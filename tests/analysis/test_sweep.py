"""Unit tests for the distribution ablation sweep."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import (
    DistributionSweep,
    default_distribution_families,
    distribution_ablation,
)
from repro.core.distributions import FixedFanout, PoissonFanout


class TestDefaultFamilies:
    def test_families_present(self):
        families = default_distribution_families(4.0)
        assert set(families) == {"poisson", "fixed", "geometric", "uniform"}

    def test_means_close_to_target(self):
        families = default_distribution_families(4.0)
        for dist in families.values():
            assert dist.mean() == pytest.approx(4.0, abs=0.6)

    def test_uniform_mean_unbiased_at_small_means(self):
        # Regression: U(max(0, rounded-2), rounded+2) was asymmetric below
        # rounded=2 — a requested mean of 1 became U(0, 3), realised mean
        # 1.5.  The symmetric clip keeps the realised mean exactly at the
        # rounded target for every mean.
        for target in (1.0, 2.0, 3.0, 4.0, 7.0):
            families = default_distribution_families(target)
            assert families["uniform"].mean() == pytest.approx(round(target)), target
            assert families["fixed"].mean() == pytest.approx(round(target)), target

    def test_realised_mean_surfaced_in_rows(self):
        sweep = distribution_ablation(200, 1.0, qs=[0.9], repetitions=2, seed=5)
        for row in sweep.rows:
            assert row.mean_fanout == pytest.approx(1.0)  # the requested mean
            assert row.mean_bias() == pytest.approx(row.realised_mean - row.mean_fanout)
            if row.family == "uniform":
                assert row.realised_mean == pytest.approx(1.0)


class TestDistributionAblation:
    def test_rows_cover_grid(self):
        sweep = distribution_ablation(
            300,
            4.0,
            qs=[0.5, 0.9],
            families={"poisson": PoissonFanout(4.0), "fixed": FixedFanout(4)},
            repetitions=3,
            seed=1,
        )
        assert len(sweep.rows) == 4
        assert sweep.families() == ["poisson", "fixed"]
        assert len(sweep.rows_for_family("poisson")) == 2

    def test_rows_for_family_sorted_by_q(self):
        sweep = distribution_ablation(
            200,
            3.0,
            qs=[0.9, 0.5],
            families={"poisson": PoissonFanout(3.0)},
            repetitions=2,
            seed=2,
        )
        qs = [row.q for row in sweep.rows_for_family("poisson")]
        assert qs == sorted(qs)

    def test_analytical_column_is_consistent(self):
        from repro.core.reliability import reliability

        sweep = distribution_ablation(
            200,
            4.0,
            qs=[0.8],
            families={"fixed": FixedFanout(4)},
            repetitions=2,
            seed=3,
        )
        row = sweep.rows[0]
        assert row.analytical == pytest.approx(reliability(FixedFanout(4), 0.8))
        assert row.critical_ratio == pytest.approx(1.0 / 3.0)

    def test_error_helpers(self):
        sweep = distribution_ablation(
            400,
            4.0,
            qs=[0.9],
            families={"poisson": PoissonFanout(4.0)},
            repetitions=5,
            seed=4,
        )
        assert sweep.max_absolute_error() <= 1.0
        for row in sweep.rows:
            assert row.absolute_error() >= 0.0

    def test_empty_sweep(self):
        sweep = DistributionSweep(n=100, qs=())
        assert sweep.max_absolute_error() == 0.0
        assert sweep.families() == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            distribution_ablation(100, 3.0, qs=[1.5], repetitions=2)

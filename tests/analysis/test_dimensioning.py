"""Unit tests for the loss-aware auto-dimensioning solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dimensioning import (
    analytic_required_fanout,
    dense_grid_dimension,
    dimension_fanout,
    dimension_pareto,
    pareto_frontier,
    wilson_interval,
)
from repro.core.distributions import GeometricFanout, PoissonFanout
from repro.core.poisson_case import mean_fanout_for_reliability, poisson_reliability
from repro.core.reliability import reliability as analytical_reliability

from tests.helpers.statistical import assert_means_close


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(18, 20, 0.95)
        assert lo < 18 / 20 < hi
        assert 0.0 <= lo <= hi <= 1.0

    def test_shrinks_with_sample_size(self):
        lo_small, hi_small = wilson_interval(18, 20, 0.95)
        lo_big, hi_big = wilson_interval(180, 200, 0.95)
        assert (hi_big - lo_big) < (hi_small - lo_small)

    def test_widens_with_confidence(self):
        lo95, hi95 = wilson_interval(50, 100, 0.95)
        lo99, hi99 = wilson_interval(50, 100, 0.99)
        assert (hi99 - lo99) > (hi95 - lo95)

    def test_degenerate_samples(self):
        lo, hi = wilson_interval(0, 10, 0.95)
        assert lo == 0.0 and hi > 0.0
        lo, hi = wilson_interval(10, 10, 0.95)
        assert hi == pytest.approx(1.0) and lo < 1.0
        # The perfect-sample lower bound is 1 / (1 + z^2/R).
        assert lo == pytest.approx(1.0 / (1.0 + 1.96**2 / 10.0), abs=1e-3)

    def test_fractional_successes_accepted(self):
        lo, hi = wilson_interval(17.5, 20, 0.95)
        assert lo < 17.5 / 20 < hi

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0, 0.95)
        with pytest.raises(ValueError):
            wilson_interval(11, 10, 0.95)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, 1.0)


class TestAnalyticRequiredFanout:
    def test_poisson_matches_eq12(self):
        assert analytic_required_fanout(0.99, 0.9) == pytest.approx(
            mean_fanout_for_reliability(0.99, 0.9)
        )

    def test_loss_is_effective_fanout_thinning(self):
        base = analytic_required_fanout(0.95, 0.9)
        lossy = analytic_required_fanout(0.95, 0.9, loss=0.2)
        assert lossy == pytest.approx(base / 0.8)
        # Exact for Poisson: the thinned fanout hits the target on the curve.
        assert poisson_reliability(lossy * 0.8, 0.9) == pytest.approx(0.95, abs=1e-9)

    def test_generic_family_round_trip(self):
        f = analytic_required_fanout(
            0.9, 0.9, distribution_factory=GeometricFanout.from_mean
        )
        achieved = analytical_reliability(GeometricFanout.from_mean(f), 0.9)
        assert achieved == pytest.approx(0.9, abs=1e-4)

    def test_generic_family_with_loss(self):
        f = analytic_required_fanout(
            0.9, 0.9, loss=0.25, distribution_factory=GeometricFanout.from_mean
        )
        achieved = analytical_reliability(GeometricFanout.from_mean(f * 0.75), 0.9)
        assert achieved == pytest.approx(0.9, abs=1e-4)

    def test_monotone_in_target_and_q(self):
        assert analytic_required_fanout(0.99, 0.9) > analytic_required_fanout(0.9, 0.9)
        assert analytic_required_fanout(0.9, 0.6) > analytic_required_fanout(0.9, 0.9)

    def test_unreachable_configurations_raise(self):
        with pytest.raises(ValueError):
            analytic_required_fanout(0.9, 0.0)
        with pytest.raises(ValueError):
            analytic_required_fanout(0.9, 0.9, loss=1.0)


class TestDimensionFanout:
    def test_round_trip_against_analytical_curve(self):
        # The solved fanout must clear the target on the analytical curve:
        # the Monte-Carlo certificate is *conservative* (Wilson + finite n),
        # so reliability(f*) >= target holds with analytic slack only from
        # finite-size effects.
        target = 0.9
        res = dimension_fanout(2000, 0.9, target, seed=101, conditional_on_spread=True)
        assert res.feasible and res.certified
        assert res.ci_low >= target
        assert poisson_reliability(res.fanout, 0.9) >= target - 0.01
        # The certifiable boundary sits above the analytic one (certifying
        # needs margin), so the answer never undercuts the seed curve by
        # more than the bisection resolution.
        assert res.fanout >= res.analytical_fanout - 0.25

    def test_certificate_holds_out_of_sample(self):
        # Fresh replicas at the solved fanout, a seed the solver never saw:
        # the measured mean must sit above the certified lower bound's band.
        from repro.simulation.gossip import simulate_gossip_batch

        target = 0.9
        res = dimension_fanout(1500, 0.9, target, seed=7, conditional_on_spread=True)
        fresh = simulate_gossip_batch(
            1500, PoissonFanout(res.fanout), 0.9, repetitions=64, seed=987654
        )
        reliability = np.where(fresh.spread_occurred(), fresh.reliability(), 0.0)
        assert_means_close(
            reliability,
            np.full(64, res.achieved_reliability),
            band=0.03,
            label="out-of-sample reliability at solved fanout",
        )
        assert float(reliability.mean()) >= target - 0.02

    def test_monotone_in_q(self):
        harsh = dimension_fanout(800, 0.7, 0.9, seed=5, conditional_on_spread=True)
        mild = dimension_fanout(800, 1.0, 0.9, seed=5, conditional_on_spread=True)
        assert harsh.fanout >= mild.fanout

    def test_monotone_in_loss(self):
        clean = dimension_fanout(800, 0.9, 0.9, seed=6, conditional_on_spread=True)
        lossy = dimension_fanout(800, 0.9, 0.9, loss=0.3, seed=6, conditional_on_spread=True)
        assert lossy.fanout >= clean.fanout
        assert lossy.analytical_fanout == pytest.approx(clean.analytical_fanout / 0.7)

    def test_loss_zero_identical_to_lossless_solver(self):
        # The engines consume no randomness for a zero-loss network, so the
        # loss=0 solve must be bit-identical to not mentioning loss at all.
        a = dimension_fanout(600, 0.9, 0.9, seed=8, conditional_on_spread=True)
        b = dimension_fanout(600, 0.9, 0.9, loss=0.0, seed=8, conditional_on_spread=True)
        assert a == b

    def test_deterministic_at_fixed_seed(self):
        a = dimension_fanout(600, 0.9, 0.9, seed=9, conditional_on_spread=True)
        b = dimension_fanout(600, 0.9, 0.9, seed=9, conditional_on_spread=True)
        assert a == b

    def test_small_n_exact_edge_case(self):
        # n=2, q=1: the group is {source, one peer}; a replica succeeds iff
        # the source's Poisson draw sends >= 1 gossip to the peer, so the
        # exact reliability at fanout z is (1 + e^{-z}) / 2 ... actually
        # delivered/alive is 1.0 on success and 0.5 on failure.  A 0.95
        # target therefore needs mean >= 0.95, i.e. P(miss) <= 0.1, i.e.
        # z >= ln 10.  The solver must land at or above that point.
        import math

        res = dimension_fanout(
            2,
            1.0,
            0.95,
            seed=10,
            fanout_tol=0.25,
            max_replicas=256,
            conditional_on_spread=False,
        )
        assert res.feasible
        exact_mean = 1.0 - math.exp(-res.fanout) / 2.0
        assert exact_mean >= 0.95 - 0.02
        assert res.ci_low >= 0.95

    def test_protocol_mode_integer_fanout(self):
        from repro.experiments.dimensioning import _protocol_factory

        res = dimension_fanout(
            400,
            0.9,
            0.9,
            protocol_factory=_protocol_factory("fixed-fanout"),
            seed=11,
        )
        assert res.feasible
        assert res.fanout == int(res.fanout)
        assert res.rounds is None  # solve_rounds not requested
        assert res.ci_low >= 0.9

    def test_protocol_mode_minimal_rounds(self):
        from repro.experiments.dimensioning import _protocol_factory

        res = dimension_fanout(
            400,
            0.9,
            0.9,
            protocol_factory=_protocol_factory("pbcast"),
            rounds=8,
            solve_rounds=True,
            seed=12,
        )
        assert res.feasible
        assert res.rounds is not None and 1 <= res.rounds <= 8
        assert res.ci_low >= 0.9

    def test_protocol_mode_with_targeted_failure_model(self):
        from repro.experiments.dimensioning import _protocol_factory
        from repro.simulation.failures import TargetedCrashModel

        # Engineered failures replace the uniform-q draw: the solver must
        # dimension against exactly the injected crash set.  Failing a fixed
        # tenth of the group is harsher than q=0.975 uniform crashes on
        # average, so the targeted run can never need a smaller fanout.
        factory = _protocol_factory("fixed-fanout")
        targeted = dimension_fanout(
            400,
            0.975,
            0.9,
            protocol_factory=factory,
            failure_model=TargetedCrashModel(failed=tuple(range(10, 50))),
            seed=19,
        )
        uniform = dimension_fanout(
            400, 0.975, 0.9, protocol_factory=factory, seed=19
        )
        assert targeted.feasible
        assert targeted.ci_low >= 0.9
        assert targeted.fanout >= uniform.fanout

    def test_infeasible_target_reported(self):
        # Cap the search at a fanout well below what the target needs.
        res = dimension_fanout(
            400, 0.5, 0.95, seed=13, max_fanout=2.0, conditional_on_spread=True
        )
        assert not res.feasible
        assert res.fanout == 2.0

    def test_replica_accounting(self):
        res = dimension_fanout(500, 0.9, 0.9, seed=14, conditional_on_spread=True)
        assert res.replicas_used >= res.evaluations * 2
        assert res.evaluations >= 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            dimension_fanout(1, 0.9, 0.9)
        with pytest.raises(ValueError):
            dimension_fanout(100, 0.9, 1.0)
        with pytest.raises(ValueError):
            dimension_fanout(100, 0.9, 0.9, fanout_tol=0.0)
        with pytest.raises(ValueError):
            dimension_fanout(100, 0.9, 0.9, loss=1.5)


class TestDenseGridAgreement:
    def test_grid_confirms_solver_within_resolution(self):
        solver = dimension_fanout(600, 0.9, 0.9, seed=15, conditional_on_spread=True)
        grid = dense_grid_dimension(
            600, 0.9, 0.9, seed=15, conditional_on_spread=True, replicas_per_point=256
        )
        assert grid.feasible
        # Same decision rule, so both answers certify the target...
        assert solver.ci_low >= 0.9 and grid.ci_low >= 0.9
        # ... and agree on where the certifiable region roughly begins.
        assert abs(solver.fanout - grid.fanout) < 2.0

    def test_solver_cheaper_than_grid(self):
        solver = dimension_fanout(600, 0.9, 0.95, seed=16, conditional_on_spread=True)
        grid = dense_grid_dimension(600, 0.9, 0.95, seed=16, conditional_on_spread=True)
        assert solver.replicas_used < grid.replicas_used

    def test_grid_infeasible_below_cap(self):
        res = dense_grid_dimension(
            300, 0.5, 0.9, seed=17, max_fanout=1.5, conditional_on_spread=True
        )
        assert not res.feasible


class TestParetoFrontier:
    def test_drops_dominated_points(self):
        frontier = pareto_frontier(
            [(4, 8), (5, 6), (5, 8), (6, 5)], keys=lambda item: item
        )
        assert frontier == [(4, 8), (5, 6), (6, 5)]

    def test_single_point(self):
        assert pareto_frontier([(3, 3)], keys=lambda item: item) == [(3, 3)]

    def test_deduplicates_equal_scores(self):
        frontier = pareto_frontier(
            [("a", 2, 2), ("b", 2, 2)], keys=lambda item: (item[1], item[2])
        )
        assert len(frontier) == 1

    def test_empty(self):
        assert pareto_frontier([], keys=lambda item: item) == []


def _pbcast_factory(fanout: int, rounds: int):
    from repro.experiments.protocol_comparison import protocol_zoo

    return dict(protocol_zoo(fanout, rounds))["pbcast"]


class TestDimensionPareto:
    @pytest.fixture(scope="class")
    def result(self):
        return dimension_pareto(
            300, 0.9, 0.9, protocol_factory=_pbcast_factory, max_rounds=6, seed=42
        )

    def test_feasible_and_certified(self, result):
        assert result.feasible
        assert result.frontier
        for candidate in result.frontier:
            assert candidate.certified
            assert candidate.ci_low >= 0.9

    def test_frontier_non_dominated(self, result):
        for candidate in result.frontier:
            for other in result.frontier:
                if other is candidate:
                    continue
                assert not (
                    other.fanout <= candidate.fanout
                    and other.rounds <= candidate.rounds
                    and (other.fanout, other.rounds) != (candidate.fanout, candidate.rounds)
                )

    def test_frontier_is_a_staircase(self, result):
        # Sorted by rising fanout, rounds must strictly fall.
        fanouts = [c.fanout for c in result.frontier]
        rounds = [c.rounds for c in result.frontier]
        assert fanouts == sorted(fanouts)
        assert rounds == sorted(rounds, reverse=True)

    def test_cost_pick_is_cheapest(self, result):
        assert result.best_cost is not None
        costs = [c.messages_per_member for c in result.frontier]
        assert result.best_cost.messages_per_member == min(costs)

    def test_lexicographic_is_min_fanout_corner(self, result):
        lex = result.lexicographic()
        assert lex is not None
        assert lex.fanout == min(c.fanout for c in result.frontier)

    def test_infeasible_when_capped(self):
        result = dimension_pareto(
            200, 0.5, 0.95, protocol_factory=_pbcast_factory,
            max_rounds=1, max_fanout=1.0, seed=43,
        )
        assert not result.feasible
        assert result.frontier == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            dimension_pareto(100, 0.9, 1.0, protocol_factory=_pbcast_factory)
        with pytest.raises(ValueError):
            dimension_pareto(
                100, 0.9, 0.9, protocol_factory=_pbcast_factory, max_rounds=0
            )


class TestLossSemanticsContract:
    """The documented contract: ``loss`` is per-message Bernoulli everywhere.

    For Poisson fanout the two views coincide exactly (thinning a Poisson(f)
    message stream at rate p yields Poisson(f(1-p))), which is why the
    analytic seed may use effective fanout.  The simulated engine must agree:
    Poisson(f) under per-message loss p == Poisson(f(1-p)) lossless.
    """

    def test_thinning_equivalence_at_quarter_loss(self):
        from repro.simulation.gossip import simulate_gossip_batch
        from repro.simulation.network import NetworkModel

        n, p, fanout, reps = 400, 0.25, 6.0, 600
        lossy = simulate_gossip_batch(
            n, PoissonFanout(fanout), 0.9, repetitions=reps, seed=918,
            network=NetworkModel(loss_probability=p),
        )
        thinned = simulate_gossip_batch(
            n, PoissonFanout(fanout * (1.0 - p)), 0.9, repetitions=reps, seed=919
        )
        assert_means_close(
            lossy.reliability(), thinned.reliability(), label="thinning equivalence"
        )

    def test_dimensioning_respects_thinning_at_quarter_loss(self):
        # Both solvers certify with Wilson margin above the analytic curve,
        # so compare them to each other: the lossy solve's *effective*
        # fanout f(1-p) must land where the lossless solve lands.
        clean = dimension_fanout(600, 0.9, 0.9, seed=920, conditional_on_spread=True)
        lossy = dimension_fanout(
            600, 0.9, 0.9, loss=0.25, seed=920, conditional_on_spread=True
        )
        assert clean.feasible and lossy.feasible
        assert lossy.fanout > clean.fanout  # loss always costs fanout
        effective = lossy.fanout * 0.75
        # Agreement within the two bisections' tolerance plus Monte-Carlo
        # wobble of the certifiable boundary.
        assert abs(effective - clean.fanout) < 1.0
        # And the documented analytic identity for the seed itself.
        assert lossy.analytical_fanout == pytest.approx(clean.analytical_fanout / 0.75)

"""Cross-module property-based tests (hypothesis).

These state the core invariants of the whole stack — analysis, graphs, and
simulation — over randomly drawn configurations rather than hand-picked
examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import EmpiricalFanout, PoissonFanout
from repro.core.model import GossipModel
from repro.core.percolation import critical_ratio, giant_component_size
from repro.core.poisson_case import mean_fanout_for_reliability, poisson_reliability
from repro.core.success import min_executions, success_probability
from repro.simulation.gossip import simulate_gossip_once

pmf_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=10
).filter(lambda w: sum(w) > 0.1)


class TestAnalyticalProperties:
    @given(
        z=st.floats(min_value=0.2, max_value=15.0),
        q_lo=st.floats(min_value=0.0, max_value=1.0),
        q_hi=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_reliability_monotone_in_q(self, z, q_lo, q_hi):
        q_lo, q_hi = sorted((q_lo, q_hi))
        assert poisson_reliability(z, q_lo) <= poisson_reliability(z, q_hi) + 1e-9

    @given(
        z_lo=st.floats(min_value=0.2, max_value=15.0),
        z_hi=st.floats(min_value=0.2, max_value=15.0),
        q=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_reliability_monotone_in_fanout(self, z_lo, z_hi, q):
        z_lo, z_hi = sorted((z_lo, z_hi))
        assert poisson_reliability(z_lo, q) <= poisson_reliability(z_hi, q) + 1e-9

    @given(
        s=st.floats(min_value=0.01, max_value=0.999),
        q=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_equation_12_round_trip(self, s, q):
        z = mean_fanout_for_reliability(s, q)
        assert poisson_reliability(z, q) == pytest.approx(s, abs=1e-6)

    @given(weights=pmf_strategy, q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_distribution_reliability_is_probability(self, weights, q):
        arr = np.asarray(weights)
        dist = EmpiricalFanout(arr / arr.sum())
        if dist.mean() <= 0:
            return
        size = giant_component_size(dist, q)
        assert 0.0 <= size <= 1.0
        qc = critical_ratio(dist)
        if qc < 1.0 and q < qc * 0.95:
            assert size == pytest.approx(0.0, abs=1e-4)

    @given(
        p_s=st.floats(min_value=0.01, max_value=0.999),
        p_r=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_success_model_consistency(self, p_s, p_r):
        t = min_executions(p_s, p_r)
        assert success_probability(p_r, t) >= p_s - 1e-9


class TestSimulationProperties:
    @given(
        n=st.integers(min_value=5, max_value=200),
        z=st.floats(min_value=0.2, max_value=8.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_execution_invariants(self, n, z, q, seed):
        execution = simulate_gossip_once(n, PoissonFanout(z), q, seed=seed)
        # Reached nonfailed members never exceed the nonfailed population,
        # the source is delivered, duplicates plus deliveries account for all
        # received messages, and reliability is a probability.
        assert execution.delivered[execution.source]
        assert execution.n_delivered() <= execution.n_alive()
        assert 0.0 <= execution.reliability() <= 1.0
        assert execution.duplicates + execution.n_delivered() - 1 <= execution.messages_sent

    @given(
        n=st.integers(min_value=10, max_value=150),
        z=st.floats(min_value=0.5, max_value=6.0),
        q=st.floats(min_value=0.1, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_model_facade_consistency(self, n, z, q, seed):
        model = GossipModel.poisson(n, z, q)
        assert 0.0 <= model.reliability() <= 1.0
        assert model.nonfailed_members() >= 1
        estimate = model.simulate_reliability(repetitions=2, seed=seed)
        assert 0.0 <= estimate.mean_reliability <= 1.0

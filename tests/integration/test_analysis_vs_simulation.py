"""Integration tests: the analytical model against the simulators.

These are the library-level statements of the paper's validation claims
(Section 5): the simulated reliability tracks the giant-component size, the
critical point sits at ``f·q = 1``, and the success counts follow the
Binomial of Eq. 5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.binomial_fit import fit_binomial
from repro.core.distributions import FixedFanout, GeometricFanout, PoissonFanout
from repro.core.percolation import critical_ratio, giant_component_size
from repro.core.poisson_case import poisson_reliability
from repro.graphs.metrics import empirical_giant_component
from repro.simulation.rounds import simulate_success_counts
from repro.simulation.runner import estimate_reliability


class TestReliabilityAgreement:
    @pytest.mark.parametrize(
        "mean_fanout,q",
        [(4.0, 0.9), (6.0, 0.6), (3.0, 0.8), (5.0, 1.0), (2.5, 0.7)],
    )
    def test_poisson_simulation_matches_equation_11(self, mean_fanout, q):
        estimate = estimate_reliability(
            2000,
            PoissonFanout(mean_fanout),
            q,
            repetitions=12,
            seed=hash((mean_fanout, q)) % (2**31),
            conditional_on_spread=True,
        )
        assert estimate.mean_reliability == pytest.approx(
            poisson_reliability(mean_fanout, q), abs=0.04
        )

    @pytest.mark.parametrize(
        "dist",
        [FixedFanout(4), GeometricFanout.from_mean(4.0)],
        ids=["fixed", "geometric"],
    )
    def test_non_poisson_conditional_reach_is_governed_by_in_degree(self, dist):
        # A reproduction finding documented in DESIGN.md/EXPERIMENTS.md: the
        # algorithm's targets are chosen uniformly, so in-degrees are Poisson
        # regardless of the fanout distribution.  Given that the gossip took
        # off, the reached fraction therefore follows the Poisson fixed point
        # at the same mean fanout; the fanout *shape* shows up in the take-off
        # probability instead (tested below).
        estimate = estimate_reliability(
            2000, dist, 0.9, repetitions=12, seed=7, conditional_on_spread=True
        )
        assert estimate.mean_reliability == pytest.approx(
            poisson_reliability(dist.mean(), 0.9), abs=0.04
        )

    def test_fanout_shape_controls_takeoff_probability(self):
        # At equal mean fanout, a degenerate (fixed) fanout never dies out in
        # the first hop while a geometric fanout (20% chance of fanout 0)
        # dies out noticeably often; Poisson sits in between.
        rates = {}
        for name, dist in (
            ("fixed", FixedFanout(4)),
            ("poisson", PoissonFanout(4.0)),
            ("geometric", GeometricFanout.from_mean(4.0)),
        ):
            rates[name] = estimate_reliability(
                1500, dist, 0.9, repetitions=30, seed=31, conditional_on_spread=True
            ).spread_rate
        assert rates["fixed"] >= rates["poisson"] - 0.05
        assert rates["poisson"] >= rates["geometric"] + 0.03
        assert rates["fixed"] > 0.95

    def test_subcritical_configuration_has_negligible_reliability(self):
        estimate = estimate_reliability(2000, PoissonFanout(1.5), 0.4, repetitions=10, seed=9)
        assert estimate.mean_reliability < 0.05
        assert giant_component_size(PoissonFanout(1.5), 0.4) == pytest.approx(0.0, abs=1e-6)

    def test_undirected_configuration_graph_matches_percolation(self):
        dist = PoissonFanout(3.0)
        estimate = empirical_giant_component(dist, 4000, 0.8, repetitions=4, seed=10)
        assert estimate.mean_fraction == pytest.approx(giant_component_size(dist, 0.8), abs=0.04)


class TestCriticalPoint:
    def test_reliability_transitions_around_fq_equal_one(self):
        q = 0.5
        below = estimate_reliability(
            3000, PoissonFanout(1.6), q, repetitions=8, seed=11, conditional_on_spread=True
        )
        above = estimate_reliability(
            3000, PoissonFanout(3.2), q, repetitions=8, seed=12, conditional_on_spread=True
        )
        # f*q = 0.8 (below threshold) vs 1.6 (above threshold).
        assert below.mean_reliability < 0.15
        assert above.mean_reliability > 0.4

    def test_empirical_critical_ratio_matches_analysis(self):
        # Scan q for a fixed fanout and find where the simulated reliability
        # first exceeds 10%; it must be near q_c = 1/z.
        z = 4.0
        qc = critical_ratio(PoissonFanout(z))
        qs = np.arange(0.05, 0.65, 0.05)
        reliabilities = [
            estimate_reliability(
                2500, PoissonFanout(z), float(q), repetitions=6, seed=20 + i,
                conditional_on_spread=True,
            ).mean_reliability
            for i, q in enumerate(qs)
        ]
        crossing = next(q for q, r in zip(qs, reliabilities, strict=True) if r > 0.1)
        assert crossing == pytest.approx(qc, abs=0.15)


class TestSuccessOfGossiping:
    def test_success_counts_follow_binomial(self):
        result = simulate_success_counts(
            800, PoissonFanout(4.0), 0.9, executions=20, simulations=60, seed=13
        )
        fit = fit_binomial(result.counts, 20, result.analytical_reliability)
        assert fit.absolute_difference < 0.05
        assert result.total_variation_distance() < 0.4

    def test_equivalent_parameter_pairs_have_similar_but_not_identical_distributions(self):
        # The paper's Figs. 6-7 observation: {4.0, 0.9} and {6.0, 0.6} share
        # the analytical reliability but the realised distributions differ.
        a = simulate_success_counts(
            600, PoissonFanout(4.0), 0.9, executions=20, simulations=50, seed=14
        )
        b = simulate_success_counts(
            600, PoissonFanout(6.0), 0.6, executions=20, simulations=50, seed=14
        )
        assert a.analytical_reliability == pytest.approx(b.analytical_reliability)
        assert a.mean_count() == pytest.approx(b.mean_count(), abs=2.0)

    def test_minimum_executions_sufficient_in_simulation(self):
        # Eq. 6 says 2-3 executions of the f=4, q=0.9 configuration give
        # 0.999 success for a member; verify the per-member miss rate after
        # that many executions is tiny.
        from repro.core.success import min_executions

        p_r = poisson_reliability(4.0, 0.9)
        t = min_executions(0.999, p_r)
        result = simulate_success_counts(
            600, PoissonFanout(4.0), 0.9, executions=t, simulations=80, seed=15
        )
        never_received = np.mean(result.counts == 0)
        assert never_received <= 0.05

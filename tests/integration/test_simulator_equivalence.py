"""Integration tests: the two simulators and the graph view agree.

The fast frontier simulator, the event-driven reference, and the
gossip-graph reachability view are three implementations of the same
process; their reliability distributions must coincide (they share no code
path beyond the distributions and membership sampling).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.graphs.gossip_graph import build_gossip_graph
from repro.simulation.gossip import simulate_gossip_event_driven, simulate_gossip_once


def conditional_mean_reliability(simulate, repetitions: int) -> tuple[float, float]:
    """Return (mean reliability over runs that took off, take-off rate).

    Single executions are bimodal (they either die out in a few hops or reach
    ~R of the group), so comparing raw means across two simulators needs many
    repetitions to beat the extinction noise; comparing the conditional mean
    and the take-off rate separately is far more stable.
    """
    values = []
    spread = 0
    for seed in range(repetitions):
        execution = simulate(seed=seed)
        if execution.spread_occurred():
            values.append(execution.reliability())
            spread += 1
    conditional = float(np.mean(values)) if values else 0.0
    return conditional, spread / repetitions


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("mean_fanout,q", [(4.0, 0.9), (2.0, 0.8), (6.0, 0.6)])
    def test_fast_vs_event_driven(self, mean_fanout, q):
        fast, fast_rate = conditional_mean_reliability(
            lambda seed: simulate_gossip_once(600, PoissonFanout(mean_fanout), q, seed=seed),
            repetitions=20,
        )
        event, event_rate = conditional_mean_reliability(
            lambda seed: simulate_gossip_event_driven(
                600, PoissonFanout(mean_fanout), q, seed=seed
            ),
            repetitions=20,
        )
        assert fast == pytest.approx(event, abs=0.06)
        assert fast_rate == pytest.approx(event_rate, abs=0.25)

    def test_fast_vs_graph_reachability(self):
        # The gossip graph's directed reachability is the same random object
        # as the simulator's delivered set.
        fast, fast_rate = conditional_mean_reliability(
            lambda seed: simulate_gossip_once(800, PoissonFanout(3.0), 0.8, seed=seed),
            repetitions=20,
        )
        graph_values = []
        graph_spread = 0
        for seed in range(20):
            g = build_gossip_graph(800, PoissonFanout(3.0), 0.8, seed=seed)
            reached = int((g.reached() & g.alive).sum())
            if reached > max(10, int(np.sqrt(g.n))):
                graph_values.append(g.reliability())
                graph_spread += 1
        assert fast == pytest.approx(float(np.mean(graph_values)), abs=0.06)
        assert fast_rate == pytest.approx(graph_spread / 20, abs=0.25)

    def test_fixed_fanout_agreement(self):
        fast, _ = conditional_mean_reliability(
            lambda seed: simulate_gossip_once(500, FixedFanout(4), 0.85, seed=seed),
            repetitions=12,
        )
        event, _ = conditional_mean_reliability(
            lambda seed: simulate_gossip_event_driven(500, FixedFanout(4), 0.85, seed=seed),
            repetitions=12,
        )
        assert fast == pytest.approx(event, abs=0.06)

    def test_rounds_comparable(self):
        # Gossip hop counts should be of the same order in both simulators.
        fast = simulate_gossip_once(1000, PoissonFanout(4.0), 1.0, seed=3)
        event = simulate_gossip_event_driven(1000, PoissonFanout(4.0), 1.0, seed=3)
        assert fast.rounds == pytest.approx(event.rounds, abs=4)

    def test_message_counts_comparable(self):
        fast = np.mean(
            [simulate_gossip_once(400, PoissonFanout(4.0), 1.0, seed=s).messages_sent for s in range(8)]
        )
        event = np.mean(
            [
                simulate_gossip_event_driven(400, PoissonFanout(4.0), 1.0, seed=s).messages_sent
                for s in range(8)
            ]
        )
        assert fast == pytest.approx(event, rel=0.15)

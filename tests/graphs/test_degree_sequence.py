"""Unit tests for degree-sequence sampling and moments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.graphs.degree_sequence import empirical_moments, is_graphical, sample_degree_sequence


class TestSampling:
    def test_length_and_dtype(self):
        degrees = sample_degree_sequence(PoissonFanout(3.0), 500, seed=1)
        assert degrees.shape == (500,)
        assert degrees.dtype == np.int64

    def test_max_degree_cap(self):
        degrees = sample_degree_sequence(PoissonFanout(10.0), 200, seed=2, max_degree=5)
        assert degrees.max() <= 5

    def test_reproducible(self):
        a = sample_degree_sequence(PoissonFanout(2.0), 100, seed=3)
        b = sample_degree_sequence(PoissonFanout(2.0), 100, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_zero_length(self):
        assert sample_degree_sequence(PoissonFanout(2.0), 0, seed=1).shape == (0,)

    def test_mean_close_to_distribution_mean(self):
        degrees = sample_degree_sequence(PoissonFanout(4.0), 20_000, seed=4)
        assert degrees.mean() == pytest.approx(4.0, abs=0.1)


class TestMoments:
    def test_fixed_sequence(self):
        moments = empirical_moments(np.array([2, 2, 2, 2]))
        assert moments.mean == pytest.approx(2.0)
        assert moments.second_factorial == pytest.approx(2.0)
        assert moments.mean_excess == pytest.approx(1.0)
        assert moments.variance == pytest.approx(0.0)

    def test_empty_sequence(self):
        moments = empirical_moments(np.array([]))
        assert moments.mean == 0.0
        assert moments.mean_excess == 0.0

    def test_zero_mean_sequence(self):
        moments = empirical_moments(np.zeros(10))
        assert moments.mean == 0.0
        assert moments.mean_excess == 0.0

    def test_matches_poisson_expectations(self):
        degrees = sample_degree_sequence(PoissonFanout(4.0), 50_000, seed=5)
        moments = empirical_moments(degrees)
        # For Poisson(z): E[k(k-1)] = z^2, so mean excess ~= z.
        assert moments.mean == pytest.approx(4.0, abs=0.1)
        assert moments.mean_excess == pytest.approx(4.0, abs=0.15)


class TestGraphicality:
    def test_simple_graphical_sequences(self):
        assert is_graphical([1, 1])
        assert is_graphical([2, 2, 2])
        assert is_graphical([3, 3, 3, 3])

    def test_odd_sum_not_graphical(self):
        assert not is_graphical([1, 1, 1])

    def test_degree_exceeding_n_minus_one(self):
        assert not is_graphical([3, 1, 1, 1][:3])  # degree 3 with only 3 nodes
        assert not is_graphical([5, 1, 1, 1])

    def test_erdos_gallai_violation(self):
        # Sum even, max degree < n, but not realisable: [3, 3, 1, 1].
        assert not is_graphical([3, 3, 1, 1])

    def test_empty_and_zero_sequences(self):
        assert is_graphical([])
        assert is_graphical([0, 0, 0])

    def test_negative_degree_rejected(self):
        assert not is_graphical([2, -1, 1])

    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, degrees):
        import networkx as nx

        assert is_graphical(degrees) == nx.is_graphical(degrees)


class TestFixedFanoutSampling:
    def test_constant_sequence(self):
        degrees = sample_degree_sequence(FixedFanout(3), 50, seed=6)
        assert np.all(degrees == 3)

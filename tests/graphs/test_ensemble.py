"""Tests for the batched graph-percolation ensemble engine.

The ensemble consumes randomness differently from the scalar
:func:`build_gossip_graph` loop, so (mirroring
``tests/simulation/test_gossip_batch.py``) the equivalence tests compare the
two **in distribution** — KS on the giant-fraction / reliability samples,
means within combined confidence bounds — while invariants and edge cases
are checked per realisation.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.core.percolation import critical_ratio, giant_component_size
from repro.graphs.ensemble import (
    GossipGraphEnsemble,
    GraphEnsembleResult,
    percolation_ensemble,
)
from repro.graphs.gossip_graph import build_gossip_graph
from repro.graphs.metrics import empirical_giant_component


class TestEnsembleBasics:
    def test_shapes_and_invariants(self):
        result = GossipGraphEnsemble(500, PoissonFanout(4.0), 0.8).realise(12, seed=1)
        assert isinstance(result, GraphEnsembleResult)
        assert result.repetitions == 12
        for arr in (result.n_alive, result.reached, result.giant_fraction, result.reliability):
            assert arr.shape == (12,)
        assert np.all(result.n_alive >= 1)  # the source never fails
        assert np.all(result.reached >= 1)
        assert np.all(result.reached <= result.n_alive)
        assert np.all((result.giant_fraction > 0.0) & (result.giant_fraction <= 1.0))
        assert np.all((result.reliability > 0.0) & (result.reliability <= 1.0))
        assert result.degree_moments.mean > 0

    def test_deterministic_for_seed(self):
        a = GossipGraphEnsemble(300, PoissonFanout(3.0), 0.7).realise(6, seed=42)
        b = GossipGraphEnsemble(300, PoissonFanout(3.0), 0.7).realise(6, seed=42)
        np.testing.assert_array_equal(a.giant_fraction, b.giant_fraction)
        np.testing.assert_array_equal(a.reached, b.reached)
        np.testing.assert_array_equal(a.n_alive, b.n_alive)

    def test_replicas_are_independent(self):
        result = GossipGraphEnsemble(200, PoissonFanout(3.0), 0.6).realise(10, seed=2)
        assert len(set(result.n_alive.tolist())) > 1

    def test_chunking_matches_single_chunk(self, monkeypatch):
        # Force tiny chunks; the per-replica statistics must stay plausible
        # (chunking only changes batching, not semantics).
        import repro.graphs.ensemble as ens

        monkeypatch.setattr(ens, "_MAX_ROWS_PER_CHUNK", 300)
        chunked = GossipGraphEnsemble(250, PoissonFanout(4.0), 0.9).realise(8, seed=3)
        assert chunked.repetitions == 8
        assert np.all(chunked.reached <= chunked.n_alive)
        assert 0.5 < chunked.reliability.mean() <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            GossipGraphEnsemble(0, PoissonFanout(3.0), 0.5)
        with pytest.raises(ValueError):
            GossipGraphEnsemble(100, PoissonFanout(3.0), 1.5)
        with pytest.raises(ValueError):
            GossipGraphEnsemble(100, PoissonFanout(3.0), 0.5, source=100)
        with pytest.raises(ValueError):
            GossipGraphEnsemble(100, PoissonFanout(3.0), 0.5).realise(0)


class TestEnsembleEdgeCases:
    def test_single_member_group(self):
        result = GossipGraphEnsemble(1, PoissonFanout(3.0), 1.0).realise(5, seed=4)
        assert np.all(result.n_alive == 1)
        assert np.all(result.reached == 1)
        assert np.all(result.giant_fraction == 1.0)
        assert np.all(result.reliability == 1.0)

    def test_zero_fanout(self):
        result = GossipGraphEnsemble(50, FixedFanout(0), 1.0).realise(5, seed=5)
        assert np.all(result.reached == 1)
        assert np.all(result.giant_fraction == pytest.approx(1.0 / 50))
        assert result.degree_moments.mean == 0.0

    def test_q_zero_only_source_alive(self):
        result = GossipGraphEnsemble(40, FixedFanout(5), 0.0).realise(5, seed=6)
        assert np.all(result.n_alive == 1)
        assert np.all(result.reliability == 1.0)
        assert np.all(result.giant_fraction == 1.0)

    def test_q_one_everyone_alive(self):
        result = GossipGraphEnsemble(80, PoissonFanout(4.0), 1.0).realise(4, seed=7)
        assert np.all(result.n_alive == 80)

    def test_huge_fanout_complete_graph(self):
        n = 60
        result = GossipGraphEnsemble(n, FixedFanout(n + 5), 1.0).realise(4, seed=8)
        assert np.all(result.reached == n)
        assert np.all(result.giant_fraction == 1.0)
        assert np.all(result.reliability == 1.0)
        assert result.degree_moments.mean == pytest.approx(n - 1)

    def test_conditional_reliability_nan_when_nothing_spreads(self):
        result = GossipGraphEnsemble(400, FixedFanout(0), 1.0).realise(4, seed=9)
        assert np.isnan(result.conditional_reliability())

    def test_subcritical_dies_out(self):
        result = GossipGraphEnsemble(800, PoissonFanout(0.5), 1.0).realise(10, seed=10)
        assert result.reached.mean() < 20
        assert not result.spread_occurred().any()


class TestEnsembleEquivalence:
    """Ensemble vs the scalar build_gossip_graph loop, in distribution."""

    N = 600
    REPS = 120

    @pytest.fixture(scope="class")
    def matched_runs(self):
        dist = PoissonFanout(4.0)
        rng = np.random.default_rng(100)
        scalar_giant = np.zeros(self.REPS)
        scalar_rel = np.zeros(self.REPS)
        for r in range(self.REPS):
            graph = build_gossip_graph(self.N, dist, 0.9, seed=rng, method="scalar")
            scalar_giant[r] = graph.giant_component_fraction()
            scalar_rel[r] = graph.reliability()
        batch = GossipGraphEnsemble(self.N, dist, 0.9).realise(self.REPS, seed=200)
        return scalar_giant, scalar_rel, batch

    def test_giant_fraction_ks(self, matched_runs):
        scalar_giant, _, batch = matched_runs
        assert stats.ks_2samp(scalar_giant, batch.giant_fraction).pvalue > 0.01

    def test_reliability_ks(self, matched_runs):
        _, scalar_rel, batch = matched_runs
        assert stats.ks_2samp(scalar_rel, batch.reliability).pvalue > 0.01

    def test_mean_giant_within_confidence_bounds(self, matched_runs):
        scalar_giant, _, batch = matched_runs
        b = batch.giant_fraction
        tolerance = 4.0 * np.sqrt(scalar_giant.var() / scalar_giant.size + b.var() / b.size)
        assert abs(scalar_giant.mean() - b.mean()) < max(tolerance, 0.02)

    def test_conditional_reliability_matches_analysis(self):
        dist = PoissonFanout(4.0)
        result = GossipGraphEnsemble(2000, dist, 0.9).realise(40, seed=11)
        assert result.conditional_reliability() == pytest.approx(
            giant_component_size(dist, 0.9), abs=0.02
        )

    def test_empirical_critical_ratio_matches_eq3(self):
        dist = PoissonFanout(4.0)
        result = GossipGraphEnsemble(5000, dist, 1.0).realise(10, seed=12)
        assert result.empirical_critical_ratio() == pytest.approx(
            critical_ratio(dist), abs=0.02
        )

    def test_fixed_fanout_equivalence(self):
        dist = FixedFanout(4)
        rng = np.random.default_rng(300)
        scalar = np.array(
            [
                build_gossip_graph(400, dist, 0.8, seed=rng, method="scalar").reliability()
                for _ in range(80)
            ]
        )
        batch = GossipGraphEnsemble(400, dist, 0.8).realise(80, seed=400)
        assert stats.ks_2samp(scalar, batch.reliability).pvalue > 0.01


class TestPercolationEnsemble:
    def test_matches_scalar_reference_in_distribution(self):
        dist = PoissonFanout(3.0)
        scalar = empirical_giant_component(dist, 800, 0.8, repetitions=40, seed=13)
        batch = percolation_ensemble(dist, 800, 0.8, repetitions=40, seed=14)
        se = np.sqrt(scalar.std_fraction**2 / 40 + batch.std_fraction() ** 2 / 40)
        assert abs(scalar.mean_fraction - batch.mean_fraction()) < max(4.0 * se, 0.02)

    def test_converges_to_eq4(self):
        dist = PoissonFanout(4.0)
        result = percolation_ensemble(dist, 4000, 0.8, repetitions=6, seed=15)
        assert result.mean_fraction() == pytest.approx(
            giant_component_size(dist, 0.8), abs=0.02
        )

    def test_q_zero(self):
        result = percolation_ensemble(PoissonFanout(3.0), 200, 0.0, repetitions=3, seed=16)
        assert np.all(result.giant_fraction == 0.0)

    def test_single_replica_std_zero(self):
        result = percolation_ensemble(PoissonFanout(3.0), 200, 0.8, repetitions=1, seed=17)
        assert result.std_fraction() == 0.0

    def test_giant_fraction_consistent_with_component_sizes(self):
        # One replica recomputed by hand through the component kernels.
        dist = FixedFanout(3)
        result = percolation_ensemble(dist, 300, 1.0, repetitions=1, seed=18)
        assert 0.0 < result.giant_fraction[0] <= 1.0
        # At q=1 nothing is removed: fraction = largest component / n.
        assert result.giant_fraction[0] * 300 == int(result.giant_fraction[0] * 300)

"""Unit tests for configuration-model graph construction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.configuration_model import (
    configuration_model_edges,
    directed_configuration_edges,
    to_networkx,
)


class TestDirectedConfiguration:
    def test_out_degrees_respected(self):
        out_degrees = np.array([2, 0, 3, 1])
        edges = directed_configuration_edges(out_degrees, seed=1)
        realised = np.bincount(edges[:, 0], minlength=4)
        np.testing.assert_array_equal(realised, out_degrees)

    def test_no_self_loops_by_default(self):
        edges = directed_configuration_edges(np.full(50, 5), seed=2)
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_targets_distinct_per_source(self):
        edges = directed_configuration_edges(np.full(30, 6), seed=3)
        for node in range(30):
            targets = edges[edges[:, 0] == node, 1]
            assert len(targets) == len(set(targets.tolist()))

    def test_degree_truncated_to_available_targets(self):
        edges = directed_configuration_edges(np.array([10, 10, 10]), seed=4)
        realised = np.bincount(edges[:, 0], minlength=3)
        assert np.all(realised == 2)  # only 2 other nodes exist

    def test_empty_and_zero_degree(self):
        assert directed_configuration_edges(np.array([], dtype=np.int64)).shape == (0, 2)
        assert directed_configuration_edges(np.zeros(5, dtype=np.int64)).shape == (0, 2)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            directed_configuration_edges(np.array([1, -2]))

    def test_self_loops_allowed_when_requested(self):
        rng_edges = directed_configuration_edges(
            np.full(4, 4), seed=5, allow_self_loops=True
        )
        realised = np.bincount(rng_edges[:, 0], minlength=4)
        assert np.all(realised == 4)

    def test_reproducible(self):
        a = directed_configuration_edges(np.full(20, 3), seed=7)
        b = directed_configuration_edges(np.full(20, 3), seed=7)
        np.testing.assert_array_equal(a, b)

    @given(
        degrees=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_out_degree_conservation(self, degrees, seed):
        degrees = np.asarray(degrees, dtype=np.int64)
        n = len(degrees)
        edges = directed_configuration_edges(degrees, seed=seed)
        realised = np.bincount(edges[:, 0], minlength=n) if edges.size else np.zeros(n, dtype=int)
        expected = np.minimum(degrees, max(n - 1, 0))
        np.testing.assert_array_equal(realised, expected)
        if edges.size:
            assert edges[:, 1].min() >= 0 and edges[:, 1].max() < n


class TestUndirectedConfiguration:
    def test_edge_count_near_half_degree_sum(self):
        degrees = np.full(200, 4)
        edges = configuration_model_edges(degrees, seed=1)
        # Simplification removes a few edges; the count stays close to sum/2.
        assert abs(len(edges) - 400) < 40

    def test_odd_sum_parity_repair(self):
        degrees = np.array([1, 1, 1])  # odd sum: one node is bumped
        edges = configuration_model_edges(degrees, seed=2)
        assert edges.shape[1] == 2

    def test_parity_repair_can_be_disabled(self):
        with pytest.raises(ValueError):
            configuration_model_edges(np.array([1, 1, 1]), seed=3, max_parity_fixes=0)

    def test_simplified_graph_has_no_loops_or_multiedges(self):
        edges = configuration_model_edges(np.full(80, 6), seed=4)
        assert np.all(edges[:, 0] != edges[:, 1])
        canon = {tuple(sorted(e)) for e in edges.tolist()}
        assert len(canon) == len(edges)

    def test_unsimplified_keeps_stub_count(self):
        degrees = np.full(50, 4)
        edges = configuration_model_edges(degrees, seed=5, simplify=False)
        assert len(edges) == degrees.sum() // 2

    def test_empty_sequence(self):
        assert configuration_model_edges(np.array([], dtype=np.int64)).shape == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            configuration_model_edges(np.array([2, -1]))


class TestToNetworkx:
    def test_directed_conversion(self):
        edges = np.array([[0, 1], [1, 2]])
        graph = to_networkx(4, edges, directed=True)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 2
        assert graph.has_edge(0, 1) and not graph.has_edge(1, 0)

    def test_undirected_conversion(self):
        edges = np.array([[0, 1]])
        graph = to_networkx(3, edges, directed=False)
        assert graph.has_edge(1, 0)

    def test_empty_graph(self):
        graph = to_networkx(5, np.empty((0, 2), dtype=np.int64))
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 0

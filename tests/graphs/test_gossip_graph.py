"""Unit tests for the gossip-induced random graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.graphs.gossip_graph import build_gossip_graph


class TestConstruction:
    def test_basic_shapes(self):
        g = build_gossip_graph(200, PoissonFanout(3.0), 0.8, seed=1)
        assert g.n == 200
        assert g.alive.shape == (200,)
        assert g.fanouts.shape == (200,)
        assert g.edges.ndim == 2 and g.edges.shape[1] == 2

    def test_source_always_alive(self):
        g = build_gossip_graph(100, PoissonFanout(2.0), 0.0, seed=2, source=7)
        assert g.alive[7]
        assert g.n_alive() == 1

    def test_failed_members_have_no_out_edges(self):
        g = build_gossip_graph(300, PoissonFanout(4.0), 0.5, seed=3)
        failed = np.flatnonzero(~g.alive)
        if g.edges.size:
            assert not np.isin(g.edges[:, 0], failed).any()

    def test_alive_fraction_near_q(self):
        g = build_gossip_graph(5000, PoissonFanout(3.0), 0.7, seed=4)
        assert g.n_alive() / g.n == pytest.approx(0.7, abs=0.03)

    def test_reproducible(self):
        a = build_gossip_graph(100, PoissonFanout(2.0), 0.9, seed=5)
        b = build_gossip_graph(100, PoissonFanout(2.0), 0.9, seed=5)
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_array_equal(a.alive, b.alive)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_gossip_graph(0, PoissonFanout(2.0), 0.5)
        with pytest.raises(ValueError):
            build_gossip_graph(10, PoissonFanout(2.0), 1.5)
        with pytest.raises(ValueError):
            build_gossip_graph(10, PoissonFanout(2.0), 0.5, source=10)


class TestQueries:
    def test_effective_edges_subset(self):
        g = build_gossip_graph(400, PoissonFanout(4.0), 0.6, seed=6)
        eff = g.effective_edges()
        assert eff.shape[0] <= g.edges.shape[0]
        if eff.size:
            assert g.alive[eff[:, 0]].all()
            assert g.alive[eff[:, 1]].all()

    def test_reached_includes_source(self):
        g = build_gossip_graph(50, FixedFanout(0), 1.0, seed=7)
        reached = g.reached()
        assert reached[g.source]
        assert reached.sum() == 1

    def test_reliability_bounds(self):
        g = build_gossip_graph(500, PoissonFanout(4.0), 0.9, seed=8)
        assert 0.0 <= g.reliability() <= 1.0

    def test_reliability_high_for_large_fanout(self):
        g = build_gossip_graph(1000, FixedFanout(8), 1.0, seed=9)
        assert g.reliability() > 0.99

    def test_reliability_zero_ish_below_threshold(self):
        g = build_gossip_graph(1000, PoissonFanout(0.5), 1.0, seed=10)
        assert g.reliability() < 0.1

    def test_out_degree_of_alive_matches_fanouts(self):
        g = build_gossip_graph(300, FixedFanout(3), 0.8, seed=11)
        # Every alive member has out-degree exactly 3 (n is large enough).
        assert np.all(g.out_degree_of_alive() == 3)

    def test_giant_component_fraction_bounds(self):
        g = build_gossip_graph(500, PoissonFanout(3.0), 0.7, seed=12)
        assert 0.0 <= g.giant_component_fraction() <= 1.0 + 1e-9

    @given(
        n=st.integers(min_value=2, max_value=120),
        z=st.floats(min_value=0.2, max_value=6.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, n, z, q, seed):
        g = build_gossip_graph(n, PoissonFanout(z), q, seed=seed)
        reached = g.reached()
        # The source is always counted; reached alive members never exceed alive members.
        assert reached[g.source]
        assert (reached & g.alive).sum() <= g.n_alive()
        assert 0.0 <= g.reliability() <= 1.0
        if g.edges.size:
            assert g.edges.min() >= 0 and g.edges.max() < n

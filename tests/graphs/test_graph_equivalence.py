"""Equivalence tests pinning the vectorized graph paths to the scalar references.

Two kinds of pinning, mirroring ``tests/simulation/test_gossip_batch.py``:

* the csgraph component/reachability kernels and the lexsort dedup are
  deterministic graph algorithms, so they must match the union-find /
  Python-BFS / ``np.unique`` references **exactly** on identical inputs;
* the vectorized edge builder consumes randomness differently from the
  scalar per-node loop, so the two are compared **in distribution**
  (exact invariants per realisation, KS / mean-CI across realisations).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.graphs.components import (
    UnionFind,
    component_labels,
    component_sizes,
    connected_components,
    largest_component_size,
    reachable_from,
)
from repro.graphs.configuration_model import (
    configuration_model_edges,
    directed_configuration_edges,
)


def _random_edges(rng: np.random.Generator, n: int, m: int) -> np.ndarray:
    return rng.integers(0, n, size=(m, 2), dtype=np.int64)


class TestComponentKernelEquivalence:
    """csgraph fast paths == union-find reference, exactly."""

    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_component_sizes_exact(self, n, m, seed):
        edges = _random_edges(np.random.default_rng(seed), n, m)
        fast = component_sizes(n, edges, method="csgraph")
        reference = component_sizes(n, edges, method="unionfind")
        np.testing.assert_array_equal(fast, reference)

    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_exact(self, n, m, seed):
        edges = _random_edges(np.random.default_rng(seed), n, m)
        fast = connected_components(n, edges, method="csgraph")
        reference = connected_components(n, edges, method="unionfind")
        to_sets = lambda comps: {frozenset(c.tolist()) for c in comps}
        assert to_sets(fast) == to_sets(reference)

    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_reachability_exact(self, n, m, seed):
        rng = np.random.default_rng(seed)
        edges = _random_edges(rng, n, m)
        source = int(rng.integers(0, n))
        fast = reachable_from(n, edges, source, method="csgraph")
        reference = reachable_from(n, edges, source, method="python")
        np.testing.assert_array_equal(fast, reference)

    def test_largest_component_large_random_graph(self):
        rng = np.random.default_rng(5)
        edges = _random_edges(rng, 3000, 6000)
        assert largest_component_size(3000, edges, method="csgraph") == largest_component_size(
            3000, edges, method="unionfind"
        )

    def test_component_labels_shape(self):
        n_comp, labels = component_labels(5, np.array([[0, 1], [3, 4]]))
        assert n_comp == 3
        assert labels.shape == (5,)
        assert labels[0] == labels[1] and labels[3] == labels[4]
        assert labels[2] not in (labels[0], labels[3])

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            component_sizes(3, np.empty((0, 2)), method="magic")
        with pytest.raises(ValueError):
            reachable_from(3, np.empty((0, 2)), 0, method="magic")


class TestUnionFindVectorized:
    """Vectorised roots()/components() == per-element find() loops."""

    @given(
        n=st.integers(min_value=1, max_value=50),
        unions=st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_roots_match_find(self, n, unions):
        uf = UnionFind(n)
        for a, b in unions:
            if a < n and b < n:
                uf.union(a, b)
        roots = uf.roots()
        expected = np.array([uf.find(i) for i in range(n)], dtype=np.int64)
        np.testing.assert_array_equal(roots, expected)

    def test_components_partition_after_unions(self):
        uf = UnionFind(8)
        for a, b in [(0, 1), (1, 2), (5, 6)]:
            uf.union(a, b)
        comps = uf.components()
        flattened = sorted(int(x) for comp in comps for x in comp)
        assert flattened == list(range(8))
        assert sorted(len(c) for c in comps) == [1, 1, 1, 2, 3]


class TestLexsortDedup:
    """The lexsort parallel-edge dedup matches the np.unique reference exactly."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_unique_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        degrees = rng.poisson(4.0, size=n)
        # Same seed => identical stub matching; simplify=False exposes the
        # raw pairs the dedup consumed.
        try:
            simplified = configuration_model_edges(degrees, seed=seed, simplify=True)
            raw = configuration_model_edges(degrees, seed=seed, simplify=False)
        except ValueError:
            return  # odd-sum repair consumed extra randomness; skip
        raw = raw[raw[:, 0] != raw[:, 1]]
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        expected = np.unique(np.column_stack([lo, hi]), axis=0)
        np.testing.assert_array_equal(simplified, expected)


class TestVectorizedEdgeBuilder:
    """Vectorized directed_configuration_edges vs the scalar reference."""

    def test_invariants_hold_per_realisation(self):
        rng = np.random.default_rng(1)
        out_degrees = rng.poisson(4.0, size=300)
        edges = directed_configuration_edges(out_degrees, seed=2, method="vectorized")
        realised = np.bincount(edges[:, 0], minlength=300)
        np.testing.assert_array_equal(realised, np.minimum(out_degrees, 299))
        assert np.all(edges[:, 0] != edges[:, 1])
        # Targets are distinct per source.
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        srt = edges[order]
        same = (srt[1:, 0] == srt[:-1, 0]) & (srt[1:, 1] == srt[:-1, 1])
        assert not same.any()

    def test_deterministic_for_seed(self):
        degrees = np.full(50, 4)
        a = directed_configuration_edges(degrees, seed=3)
        b = directed_configuration_edges(degrees, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_in_degree_distribution_matches_scalar(self):
        # The in-degree of every node is the statistic the construction
        # randomises; pool it over independent realisations of each method
        # and require KS agreement plus a mean within combined CI.
        n, runs = 250, 40
        degrees = np.minimum(np.random.default_rng(4).poisson(4.0, size=n), n - 1)
        rng_scalar = np.random.default_rng(100)
        rng_vec = np.random.default_rng(200)
        in_scalar, in_vec = [], []
        for _ in range(runs):
            es = directed_configuration_edges(degrees, seed=rng_scalar, method="scalar")
            ev = directed_configuration_edges(degrees, seed=rng_vec, method="vectorized")
            in_scalar.append(np.bincount(es[:, 1], minlength=n))
            in_vec.append(np.bincount(ev[:, 1], minlength=n))
        s = np.concatenate(in_scalar)
        v = np.concatenate(in_vec)
        assert s.sum() == v.sum() == runs * np.minimum(degrees, n - 1).sum()
        assert stats.ks_2samp(s, v).pvalue > 0.01
        tolerance = 4.0 * np.sqrt(s.var() / s.size + v.var() / v.size)
        assert abs(s.mean() - v.mean()) < max(tolerance, 0.02)

    def test_giant_component_distribution_matches_scalar(self):
        # End-to-end: giant-fraction samples from both construction methods
        # on the same degree law agree in distribution.
        n, runs = 220, 50
        dist_degrees = lambda r: np.minimum(r.poisson(2.0, size=n), n - 1)
        rng_scalar = np.random.default_rng(300)
        rng_vec = np.random.default_rng(400)
        f_scalar, f_vec = [], []
        for _ in range(runs):
            es = directed_configuration_edges(dist_degrees(rng_scalar), seed=rng_scalar, method="scalar")
            ev = directed_configuration_edges(dist_degrees(rng_vec), seed=rng_vec, method="vectorized")
            f_scalar.append(largest_component_size(n, es) / n)
            f_vec.append(largest_component_size(n, ev) / n)
        assert stats.ks_2samp(f_scalar, f_vec).pvalue > 0.01

    # ------------------------------------------------------------ edge cases
    def test_single_node(self):
        assert directed_configuration_edges(np.array([5]), seed=1).shape == (0, 2)

    def test_zero_fanout(self):
        assert directed_configuration_edges(np.zeros(10, dtype=np.int64), seed=1).shape == (0, 2)

    def test_fanout_at_least_n_minus_1_gives_complete_digraph(self):
        n = 12
        edges = directed_configuration_edges(np.full(n, n + 3), seed=1)
        assert edges.shape == (n * (n - 1), 2)
        assert np.all(edges[:, 0] != edges[:, 1])
        pairs = {(int(a), int(b)) for a, b in edges}
        assert len(pairs) == n * (n - 1)

    def test_self_loops_allowed_vectorized(self):
        edges = directed_configuration_edges(np.full(6, 6), seed=2, allow_self_loops=True)
        realised = np.bincount(edges[:, 0], minlength=6)
        assert np.all(realised == 6)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            directed_configuration_edges(np.array([1, 1]), method="magic")

"""Unit tests for empirical graph metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.core.poisson_case import poisson_reliability
from repro.graphs.metrics import (
    component_size_distribution,
    degree_statistics,
    empirical_giant_component,
)


class TestDegreeStatistics:
    def test_wrapper_matches_moments(self):
        stats = degree_statistics(np.array([1, 2, 3, 4]))
        assert stats.mean == pytest.approx(2.5)


class TestComponentSizeDistribution:
    def test_returns_descending_sizes(self):
        edges = np.array([[0, 1], [2, 3], [3, 4]])
        sizes = component_size_distribution(6, edges)
        assert list(sizes) == [3, 2, 1]


class TestEmpiricalGiantComponent:
    def test_matches_analysis_supercritical(self):
        estimate = empirical_giant_component(
            PoissonFanout(4.0), 3000, 0.9, repetitions=5, seed=1
        )
        # The undirected configuration graph with Poisson degrees under site
        # percolation follows the same Eq. 11 fixed point.
        assert estimate.mean_fraction == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.05)

    def test_small_below_threshold(self):
        estimate = empirical_giant_component(
            PoissonFanout(1.0), 3000, 0.5, repetitions=5, seed=2
        )
        assert estimate.mean_fraction < 0.05

    def test_repetition_bookkeeping(self):
        estimate = empirical_giant_component(FixedFanout(3), 500, 0.8, repetitions=3, seed=3)
        assert estimate.repetitions == 3
        assert estimate.std_fraction >= 0.0

    def test_q_zero(self):
        estimate = empirical_giant_component(PoissonFanout(3.0), 200, 0.0, repetitions=2, seed=4)
        assert estimate.mean_fraction <= 1.0

    def test_single_repetition_has_zero_std(self):
        estimate = empirical_giant_component(PoissonFanout(3.0), 200, 0.8, repetitions=1, seed=5)
        assert estimate.std_fraction == 0.0

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            empirical_giant_component(PoissonFanout(3.0), 100, 0.5, repetitions=0)

"""Test package (unique import path for same-basename test modules)."""

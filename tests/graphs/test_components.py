"""Unit tests for union-find, components, and reachability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.components import (
    UnionFind,
    component_sizes,
    connected_components,
    largest_component_size,
    reachable_from,
)


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert len(uf) == 5
        assert uf.n_components == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 2

    def test_component_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(0) == 3
        assert uf.component_size(5) == 1

    def test_components_partition(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        comps = uf.components()
        flattened = sorted(int(x) for comp in comps for x in comp)
        assert flattened == list(range(5))
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 2]

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert len(uf) == 0
        assert uf.components() == []

    @given(
        n=st.integers(min_value=1, max_value=30),
        edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_component_count_invariant(self, n, edges):
        uf = UnionFind(n)
        merges = 0
        for a, b in edges:
            if a < n and b < n:
                merges += int(uf.union(a, b))
        assert uf.n_components == n - merges


class TestConnectedComponents:
    def test_chain_graph(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        comps = connected_components(5, edges)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [2, 3]

    def test_no_edges(self):
        comps = connected_components(4, np.empty((0, 2), dtype=np.int64))
        assert len(comps) == 4

    def test_component_sizes_descending(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        sizes = component_sizes(6, edges)
        assert list(sizes) == [3, 2, 1]

    def test_largest_component(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert largest_component_size(6, edges) == 4
        assert largest_component_size(0, np.empty((0, 2))) == 0

    def test_invalid_edge_shape(self):
        with pytest.raises(ValueError):
            connected_components(3, np.array([[0, 1, 2]]))


class TestReachability:
    def test_direction_matters(self):
        edges = np.array([[0, 1], [1, 2]])
        reached = reachable_from(4, edges, 0)
        assert list(reached) == [True, True, True, False]
        reached_back = reachable_from(4, edges, 2)
        assert list(reached_back) == [False, False, True, False]

    def test_source_only(self):
        reached = reachable_from(3, np.empty((0, 2), dtype=np.int64), 1)
        assert list(reached) == [False, True, False]

    def test_cycle(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        assert reachable_from(3, edges, 2).all()

    def test_branching(self):
        edges = np.array([[0, 1], [0, 2], [2, 3], [4, 5]])
        reached = reachable_from(6, edges, 0)
        assert list(reached) == [True, True, True, True, False, False]

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            reachable_from(3, np.empty((0, 2), dtype=np.int64), 5)

    @given(
        n=st.integers(min_value=2, max_value=25),
        edge_count=st.integers(min_value=0, max_value=80),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_descendants(self, n, edge_count, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=(edge_count, 2))
        reached = reachable_from(n, edges, 0)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(map(tuple, edges))
        expected = {0} | nx.descendants(graph, 0)
        assert set(np.flatnonzero(reached)) == expected

    def test_undirected_component_vs_directed_reach(self):
        # Undirected component membership is a superset of directed reachability.
        edges = np.array([[1, 0], [1, 2], [3, 2]])
        reached = reachable_from(4, edges, 0)
        assert reached.sum() == 1
        assert largest_component_size(4, edges) == 4

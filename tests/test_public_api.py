"""Tests of the package-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.graphs",
            "repro.simulation",
            "repro.protocols",
            "repro.analysis",
            "repro.experiments",
            "repro.utils",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_headline_workflow_via_top_level_names(self):
        model = repro.GossipModel(n=200, distribution=repro.PoissonFanout(4.0), q=0.9)
        assert model.reliability() == pytest.approx(repro.poisson_reliability(4.0, 0.9))
        assert repro.min_executions(0.999, 0.967) == 3
        assert repro.critical_ratio(repro.PoissonFanout(4.0)) == pytest.approx(0.25)

    def test_docstrings_on_public_callables(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            assert getattr(obj, "__doc__", None), f"{name} is missing a docstring"

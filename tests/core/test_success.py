"""Unit tests for the success-of-gossiping model (Eqs. 5-6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.success import (
    SuccessModel,
    min_executions,
    success_count_cdf,
    success_count_pmf,
    success_probability,
)


class TestSuccessProbability:
    def test_single_execution_equals_reliability(self):
        assert success_probability(0.7, 1) == pytest.approx(0.7)

    def test_zero_executions_is_zero(self):
        assert success_probability(0.9, 0) == 0.0

    def test_formula(self):
        assert success_probability(0.5, 3) == pytest.approx(1 - 0.5**3)

    def test_perfect_reliability(self):
        assert success_probability(1.0, 1) == 1.0

    def test_zero_reliability(self):
        assert success_probability(0.0, 100) == 0.0

    def test_monotone_in_executions(self):
        values = [success_probability(0.4, t) for t in range(6)]
        assert all(b >= a for a, b in zip(values, values[1:], strict=False))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            success_probability(1.5, 2)
        with pytest.raises(ValueError):
            success_probability(0.5, -1)

    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        t=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_result_is_probability(self, p, t):
        value = success_probability(p, t)
        assert 0.0 <= value <= 1.0


class TestMinExecutions:
    def test_paper_example(self):
        # The paper: p_s = 0.999, p_r = 0.967 => t >= lg(0.001)/lg(0.033) ~= 2.03,
        # hence the minimum integer number of executions is 3.
        assert min_executions(0.999, 0.967) == 3

    def test_high_reliability_needs_few_executions(self):
        assert min_executions(0.999, 0.99) == 2
        assert min_executions(0.999, 0.9995) == 1

    def test_low_reliability_needs_many(self):
        assert min_executions(0.999, 0.3) == 20

    def test_result_satisfies_requirement_minimally(self):
        for p_r in (0.2, 0.4, 0.6, 0.8, 0.95):
            t = min_executions(0.999, p_r)
            assert success_probability(p_r, t) >= 0.999
            assert success_probability(p_r, t - 1) < 0.999

    def test_perfect_reliability_needs_one(self):
        assert min_executions(0.99, 1.0) == 1

    def test_zero_requirement_needs_none(self):
        assert min_executions(0.0, 0.5) == 0

    def test_zero_reliability_raises(self):
        with pytest.raises(ValueError):
            min_executions(0.9, 0.0)

    def test_requirement_of_one_rejected(self):
        with pytest.raises(ValueError):
            min_executions(1.0, 0.9)

    @given(
        p_s=st.floats(min_value=0.01, max_value=0.9999),
        p_r=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_minimality_property(self, p_s, p_r):
        t = min_executions(p_s, p_r)
        assert success_probability(p_r, t) >= p_s - 1e-12
        if t > 1:
            assert success_probability(p_r, t - 1) < p_s + 1e-9


class TestSuccessCountDistribution:
    def test_pmf_sums_to_one(self):
        pmf = success_count_pmf(20, 0.967)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
        assert len(pmf) == 21

    def test_pmf_mode_near_t_for_high_reliability(self):
        pmf = success_count_pmf(20, 0.967)
        assert int(np.argmax(pmf)) == 20

    def test_mean_matches_binomial(self):
        pmf = success_count_pmf(10, 0.4)
        mean = float(np.sum(np.arange(11) * pmf))
        assert mean == pytest.approx(4.0, abs=1e-9)

    def test_cdf_matches_cumsum_of_pmf(self):
        pmf = success_count_pmf(15, 0.6)
        cdf = success_count_cdf(15, 0.6)
        np.testing.assert_allclose(cdf, np.cumsum(pmf), atol=1e-9)

    def test_degenerate_probabilities(self):
        pmf0 = success_count_pmf(5, 0.0)
        assert pmf0[0] == pytest.approx(1.0)
        pmf1 = success_count_pmf(5, 1.0)
        assert pmf1[5] == pytest.approx(1.0)


class TestSuccessModel:
    def test_paper_workflow(self):
        model = SuccessModel(per_execution_reliability=0.967)
        assert model.min_executions(0.999) == 3
        assert model.success_probability(3) >= 0.999
        assert model.expected_successes(20) == pytest.approx(20 * 0.967)

    def test_pmf_delegation(self):
        model = SuccessModel(per_execution_reliability=0.5)
        np.testing.assert_allclose(model.success_count_pmf(4), success_count_pmf(4, 0.5))

    def test_invalid_reliability_rejected(self):
        with pytest.raises(ValueError):
            SuccessModel(per_execution_reliability=1.2)

    def test_frozen(self):
        model = SuccessModel(per_execution_reliability=0.9)
        with pytest.raises(AttributeError):
            model.per_execution_reliability = 0.5  # type: ignore[misc]

"""Unit tests for the closed-form Poisson case study (Section 4.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.poisson_case import (
    mean_fanout_for_reliability,
    nonfailed_ratio_for_reliability,
    poisson_critical_fanout,
    poisson_critical_ratio,
    poisson_reliability,
    poisson_reliability_curve,
)


class TestCriticalPoints:
    def test_critical_ratio(self):
        assert poisson_critical_ratio(4.0) == pytest.approx(0.25)
        assert poisson_critical_ratio(2.0) == pytest.approx(0.5)

    def test_critical_fanout(self):
        assert poisson_critical_fanout(0.5) == pytest.approx(2.0)
        assert poisson_critical_fanout(1.0) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            poisson_critical_ratio(0.0)
        with pytest.raises(ValueError):
            poisson_critical_fanout(0.0)


class TestPoissonReliability:
    def test_paper_headline_value(self):
        # The paper reports R(q=0.9, Po(4)) ~= 0.967 (it solves Eq. 12 with
        # rounded values); the exact fixed point of Eq. 11 is ~0.9695.
        value = poisson_reliability(4.0, 0.9)
        assert value == pytest.approx(0.9695, abs=2e-3)

    def test_paper_equivalent_pairs_have_equal_reliability(self):
        # {f=4.0, q=0.9} and {f=6.0, q=0.6} share f*q = 3.6 and therefore the
        # same analytical reliability (the observation behind Figs. 6-7).
        assert poisson_reliability(4.0, 0.9) == pytest.approx(
            poisson_reliability(6.0, 0.6), abs=1e-9
        )

    def test_zero_below_critical_point(self):
        assert poisson_reliability(2.0, 0.4) == 0.0
        assert poisson_reliability(1.0, 1.0) == 0.0  # exactly at threshold

    def test_satisfies_fixed_point_equation(self):
        for z, q in [(3.0, 0.8), (5.0, 0.5), (2.0, 0.9)]:
            s = poisson_reliability(z, q)
            assert s == pytest.approx(1.0 - math.exp(-z * q * s), abs=1e-9)

    def test_full_reliability_limit(self):
        # Very large fanout: essentially every nonfailed member is reached.
        assert poisson_reliability(50.0, 1.0) == pytest.approx(1.0, abs=1e-12)

    def test_monotone_in_fanout_and_q(self):
        zs = [1.5, 2.0, 3.0, 4.0, 6.0]
        values = [poisson_reliability(z, 0.8) for z in zs]
        assert all(b >= a for a, b in zip(values, values[1:], strict=False))
        qs = [0.3, 0.5, 0.7, 0.9, 1.0]
        values = [poisson_reliability(3.0, q) for q in qs]
        assert all(b >= a for a, b in zip(values, values[1:], strict=False))

    def test_curve_matches_pointwise(self):
        zs = [0.5, 1.0, 2.0, 4.0]
        curve = poisson_reliability_curve(zs, 0.9)
        for z, s in zip(zs, curve, strict=True):
            assert s == pytest.approx(poisson_reliability(z, 0.9) if z > 0 else 0.0)

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            poisson_reliability(-1.0, 0.5)

    @given(
        z=st.floats(min_value=0.2, max_value=20.0),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_reliability_is_valid_probability(self, z, q):
        s = poisson_reliability(z, q)
        assert 0.0 <= s <= 1.0
        if z * q <= 1.0:
            assert s == 0.0
        else:
            assert s > 0.0


class TestEquation12:
    def test_round_trip_with_equation_11(self):
        # Eq. 12 then Eq. 11 must recover the target reliability.
        for s_target in (0.2, 0.5, 0.9, 0.99):
            for q in (0.4, 0.8, 1.0):
                z = mean_fanout_for_reliability(s_target, q)
                assert poisson_reliability(z, q) == pytest.approx(s_target, abs=1e-9)

    def test_known_value_from_paper(self):
        # Figs. 6-7: reliability 0.967 at q=0.9 needs mean fanout ~ 3.92,
        # i.e. roughly the f=4.0 the paper picks.
        z = mean_fanout_for_reliability(0.967, 0.9)
        assert z == pytest.approx(3.92, abs=0.02)

    def test_smaller_q_needs_larger_fanout(self):
        z_small_q = mean_fanout_for_reliability(0.9, 0.4)
        z_large_q = mean_fanout_for_reliability(0.9, 0.9)
        assert z_small_q > z_large_q

    def test_extreme_reliability_requires_huge_fanout(self):
        assert mean_fanout_for_reliability(0.9999, 0.2) > 40.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            mean_fanout_for_reliability(0.0, 0.5)
        with pytest.raises(ValueError):
            mean_fanout_for_reliability(1.0, 0.5)
        with pytest.raises(ValueError):
            mean_fanout_for_reliability(0.5, 0.0)


class TestRatioForReliability:
    def test_inverse_relationship(self):
        q = nonfailed_ratio_for_reliability(0.9, 5.0)
        assert poisson_reliability(5.0, q) == pytest.approx(0.9, abs=1e-9)

    def test_unreachable_targets_exceed_one(self):
        # A tiny fanout cannot reach high reliability even with no failures.
        assert nonfailed_ratio_for_reliability(0.99, 1.5) > 1.0

    def test_consistent_with_mean_fanout_inverse(self):
        s, q = 0.8, 0.7
        z = mean_fanout_for_reliability(s, q)
        assert nonfailed_ratio_for_reliability(s, z) == pytest.approx(q, rel=1e-9)

"""Unit tests for the GossipModel façade."""

from __future__ import annotations

import pytest

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.core.model import GossipModel
from repro.core.poisson_case import poisson_reliability


class TestConstruction:
    def test_poisson_convenience_constructor(self):
        model = GossipModel.poisson(1000, 4.0, 0.9)
        assert isinstance(model.distribution, PoissonFanout)
        assert model.n == 1000
        assert model.q == 0.9

    def test_rejects_small_group(self):
        with pytest.raises(ValueError):
            GossipModel(n=1, distribution=PoissonFanout(2.0), q=0.5)

    def test_rejects_bad_distribution_type(self):
        with pytest.raises(TypeError):
            GossipModel(n=10, distribution="poisson", q=0.5)  # type: ignore[arg-type]

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            GossipModel(n=10, distribution=PoissonFanout(2.0), q=1.5)


class TestAnalyticalInterface:
    def test_reliability_matches_closed_form(self):
        model = GossipModel.poisson(2000, 4.0, 0.9)
        assert model.reliability() == pytest.approx(poisson_reliability(4.0, 0.9))

    def test_critical_ratio_and_supercritical_flag(self):
        model = GossipModel.poisson(500, 4.0, 0.9)
        assert model.critical_ratio() == pytest.approx(0.25)
        assert model.is_supercritical()
        sub = GossipModel.poisson(500, 2.0, 0.3)
        assert not sub.is_supercritical()

    def test_nonfailed_members_count(self):
        model = GossipModel.poisson(1000, 4.0, 0.9)
        assert model.nonfailed_members() == 900
        tiny = GossipModel.poisson(10, 4.0, 0.0)
        assert tiny.nonfailed_members() == 1  # the source never fails

    def test_success_probability_and_min_executions(self):
        model = GossipModel.poisson(1000, 4.0, 0.9)
        p1 = model.reliability()
        assert model.success_probability(1) == pytest.approx(p1)
        assert model.success_probability(3) == pytest.approx(1 - (1 - p1) ** 3)
        t = model.min_executions(0.999)
        assert model.success_probability(t) >= 0.999
        assert model.success_probability(t - 1) < 0.999

    def test_max_tolerable_failure_ratio(self):
        model = GossipModel(n=1000, distribution=FixedFanout(6), q=0.9)
        ratio = model.max_tolerable_failure_ratio(0.9)
        assert 0.0 < ratio < 1.0

    def test_describe_contents(self):
        model = GossipModel.poisson(1000, 4.0, 0.9)
        info = model.describe()
        assert info["n"] == 1000
        assert info["q"] == 0.9
        assert info["mean_fanout"] == pytest.approx(4.0)
        assert info["critical_ratio"] == pytest.approx(0.25)
        assert info["analytical_reliability"] == pytest.approx(model.reliability())

    def test_analysis_is_cached(self):
        model = GossipModel.poisson(1000, 4.0, 0.9)
        assert model.analysis() is model.analysis()


class TestSimulationInterface:
    def test_simulate_reliability_matches_analysis(self):
        model = GossipModel.poisson(800, 4.0, 0.9)
        estimate = model.simulate_reliability(repetitions=10, seed=1)
        assert estimate.mean_reliability == pytest.approx(model.reliability(), abs=0.05)
        assert estimate.repetitions == 10

    def test_simulate_success_counts_shape(self):
        model = GossipModel.poisson(300, 4.0, 0.9)
        result = model.simulate_success(executions=10, simulations=20, seed=2)
        assert result.executions == 10
        assert result.simulations == 20
        assert result.counts.shape == (20,)
        assert result.counts.max() <= 10

"""Unit tests for the reliability API (R(q, P) and design inverses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import FixedFanout, GeometricFanout, PoissonFanout
from repro.core.poisson_case import poisson_reliability
from repro.core.reliability import (
    ReliabilityModel,
    reliability,
    reliability_curve,
    required_fanout_poisson,
)


class TestReliabilityFunction:
    def test_poisson_uses_closed_form(self):
        assert reliability(PoissonFanout(4.0), 0.9) == pytest.approx(
            poisson_reliability(4.0, 0.9), abs=1e-12
        )

    def test_generic_distribution(self):
        value = reliability(FixedFanout(4), 0.9)
        assert 0.9 < value <= 1.0

    def test_subcritical_is_zero(self):
        assert reliability(PoissonFanout(1.0), 0.5) == pytest.approx(0.0, abs=1e-6)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            reliability(PoissonFanout(2.0), -0.1)


class TestReliabilityCurve:
    def test_default_poisson_curve(self):
        fanouts = [0.5, 1.0, 2.0, 4.0]
        curve = reliability_curve(fanouts, 0.9)
        assert curve.shape == (4,)
        assert curve[0] == 0.0  # below threshold
        assert curve[-1] == pytest.approx(poisson_reliability(4.0, 0.9))

    def test_non_positive_fanouts_yield_zero(self):
        curve = reliability_curve([0.0, -1.0, 3.0], 0.8)
        assert curve[0] == 0.0 and curve[1] == 0.0 and curve[2] > 0.0

    def test_alternative_distribution_factory(self):
        curve = reliability_curve([3.0], 0.9, distribution_factory=GeometricFanout.from_mean)
        assert 0.0 < curve[0] < 1.0
        assert curve[0] != pytest.approx(poisson_reliability(3.0, 0.9), abs=1e-3)

    def test_curve_is_monotone(self):
        curve = reliability_curve(np.arange(1.0, 8.0, 0.5), 0.7)
        assert np.all(np.diff(curve) >= -1e-9)


class TestRequiredFanout:
    def test_matches_eq12(self):
        assert required_fanout_poisson(0.9, 0.8) == pytest.approx(
            -np.log(0.1) / (0.8 * 0.9), rel=1e-9
        )

    def test_round_trip(self):
        z = required_fanout_poisson(0.95, 0.6)
        assert poisson_reliability(z, 0.6) == pytest.approx(0.95, abs=1e-9)


class TestReliabilityModel:
    def test_critical_ratio_delegates(self):
        model = ReliabilityModel(PoissonFanout(4.0))
        assert model.critical_ratio() == pytest.approx(0.25)

    def test_reliability_cached_and_correct(self):
        model = ReliabilityModel(PoissonFanout(4.0))
        first = model.reliability(0.9)
        second = model.reliability(0.9)
        assert first == second == pytest.approx(poisson_reliability(4.0, 0.9))

    def test_profile_matches_pointwise(self):
        model = ReliabilityModel(PoissonFanout(3.0))
        qs = [0.3, 0.5, 0.9]
        profile = model.reliability_profile(qs)
        for q, value in zip(qs, profile, strict=True):
            assert value == pytest.approx(model.reliability(q))

    def test_analysis_record(self):
        model = ReliabilityModel(PoissonFanout(5.0))
        record = model.analysis(0.5)
        assert record.supercritical
        assert record.giant_component_size == pytest.approx(model.reliability(0.5), abs=1e-9)

    def test_tolerable_failure_ratio_consistency(self):
        model = ReliabilityModel(PoissonFanout(4.0))
        target = 0.9
        max_failures = model.tolerable_failure_ratio(target)
        assert 0.0 < max_failures < 1.0
        q_min = 1.0 - max_failures
        # At the boundary the reliability meets the target; slightly beyond it fails.
        assert model.reliability(q_min) >= target - 1e-3
        assert model.reliability(max(q_min - 0.05, 0.0)) < target

    def test_tolerable_failure_ratio_unreachable_target(self):
        # Mean fanout 1.2 cannot reach 0.99 reliability even with q = 1.
        model = ReliabilityModel(PoissonFanout(1.2))
        assert model.tolerable_failure_ratio(0.99) == 0.0

    def test_tolerable_failure_ratio_monotone_in_target(self):
        model = ReliabilityModel(PoissonFanout(5.0))
        loose = model.tolerable_failure_ratio(0.5)
        strict = model.tolerable_failure_ratio(0.95)
        assert loose > strict

    def test_invalid_target(self):
        model = ReliabilityModel(PoissonFanout(3.0))
        with pytest.raises(ValueError):
            model.tolerable_failure_ratio(1.0)

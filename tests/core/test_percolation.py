"""Unit tests for the percolation analysis (Eqs. 2-4 of the paper)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    EmpiricalFanout,
    FixedFanout,
    GeometricFanout,
    PoissonFanout,
    ZipfFanout,
)
from repro.core.percolation import (
    critical_fanout_scale,
    critical_mean_fanout,
    critical_ratio,
    giant_component_size,
    giant_component_size_all_nodes,
    mean_component_size,
    percolation_analysis,
    spanning_fanout_condition,
)


class TestCriticalRatio:
    def test_poisson_critical_ratio_is_reciprocal_of_mean(self):
        # Eq. 10: q_c = 1/z for Poisson fanout.
        for z in (1.5, 2.0, 4.0, 6.0):
            assert critical_ratio(PoissonFanout(z)) == pytest.approx(1.0 / z, rel=1e-9)

    def test_fixed_fanout_critical_ratio(self):
        # G1'(1) = k - 1 for a fixed fanout k, so q_c = 1/(k-1).
        assert critical_ratio(FixedFanout(4)) == pytest.approx(1.0 / 3.0)

    def test_degenerate_distributions_have_infinite_threshold(self):
        assert critical_ratio(FixedFanout(0)) == math.inf
        assert critical_ratio(FixedFanout(1)) == math.inf
        assert critical_ratio(EmpiricalFanout([0.5, 0.5])) == math.inf

    def test_critical_mean_fanout_inverse(self):
        assert critical_mean_fanout(0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            critical_mean_fanout(0.0)

    def test_heavier_tail_lowers_threshold_at_equal_mean(self):
        # At equal mean, a heavier-tailed fanout has a larger excess degree
        # and therefore a smaller critical ratio.
        poisson = PoissonFanout(3.0)
        geometric = GeometricFanout.from_mean(3.0)
        assert critical_ratio(geometric) < critical_ratio(poisson)


class TestMeanComponentSize:
    def test_subcritical_value_matches_formula(self):
        dist = PoissonFanout(2.0)
        q = 0.3  # q z = 0.6 < 1: subcritical
        expected = q * (1.0 + q * dist.g0_prime(1.0) / (1.0 - q * dist.g1_prime(1.0)))
        assert mean_component_size(dist, q) == pytest.approx(expected)

    def test_diverges_at_critical_point(self):
        dist = PoissonFanout(2.0)
        assert mean_component_size(dist, 0.5) == math.inf
        assert mean_component_size(dist, 0.9) == math.inf

    def test_grows_towards_threshold(self):
        dist = PoissonFanout(2.0)
        values = [mean_component_size(dist, q) for q in (0.1, 0.2, 0.3, 0.4, 0.45)]
        assert all(b > a for a, b in zip(values, values[1:], strict=False))

    def test_q_zero(self):
        assert mean_component_size(PoissonFanout(3.0), 0.0) == 0.0


class TestGiantComponentSize:
    def test_zero_below_threshold(self):
        assert giant_component_size(PoissonFanout(2.0), 0.4) == pytest.approx(0.0, abs=1e-6)

    def test_positive_above_threshold(self):
        assert giant_component_size(PoissonFanout(2.0), 0.7) > 0.2

    def test_matches_poisson_closed_form(self):
        from repro.core.poisson_case import poisson_reliability

        for z, q in [(4.0, 0.9), (6.0, 0.6), (2.0, 0.8), (3.0, 1.0)]:
            assert giant_component_size(PoissonFanout(z), q) == pytest.approx(
                poisson_reliability(z, q), abs=1e-6
            )

    def test_monotone_in_q(self):
        dist = PoissonFanout(3.0)
        sizes = [giant_component_size(dist, q) for q in (0.4, 0.5, 0.7, 0.9, 1.0)]
        assert all(b >= a - 1e-9 for a, b in zip(sizes, sizes[1:], strict=False))

    def test_monotone_in_mean_fanout(self):
        sizes = [giant_component_size(PoissonFanout(z), 0.8) for z in (1.5, 2.0, 3.0, 5.0, 8.0)]
        assert all(b >= a - 1e-9 for a, b in zip(sizes, sizes[1:], strict=False))

    def test_all_nodes_normalisation(self):
        dist = PoissonFanout(4.0)
        q = 0.75
        assert giant_component_size_all_nodes(dist, q) == pytest.approx(
            q * giant_component_size(dist, q)
        )

    def test_zero_mean_distribution(self):
        assert giant_component_size(FixedFanout(0), 0.9) == 0.0

    def test_q_zero_gives_zero(self):
        assert giant_component_size(PoissonFanout(5.0), 0.0) == 0.0

    def test_fixed_fanout_reliability_higher_than_poisson_at_same_mean(self):
        # Lower fanout variance concentrates the degree at the mean, which for
        # supercritical settings yields a slightly larger giant component.
        q = 0.9
        assert giant_component_size(FixedFanout(4), q) > giant_component_size(
            PoissonFanout(4.0), q
        )

    @given(
        z=st.floats(min_value=0.3, max_value=12.0),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_size_in_unit_interval(self, z, q):
        size = giant_component_size(PoissonFanout(z), q)
        assert 0.0 <= size <= 1.0

    @given(
        alpha=st.floats(min_value=1.2, max_value=3.5),
        q=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_zipf_size_in_unit_interval(self, alpha, q):
        size = giant_component_size(ZipfFanout(alpha, 30), q)
        assert 0.0 <= size <= 1.0


class TestPercolationAnalysis:
    def test_record_is_consistent(self):
        dist = PoissonFanout(4.0)
        result = percolation_analysis(dist, 0.9)
        assert result.q == 0.9
        assert result.mean_fanout == pytest.approx(4.0)
        assert result.critical_ratio == pytest.approx(0.25)
        assert result.supercritical
        assert result.giant_component_size == pytest.approx(
            giant_component_size(dist, 0.9), abs=1e-9
        )
        assert result.giant_component_size_all == pytest.approx(
            0.9 * result.giant_component_size
        )
        assert 0.0 <= result.u < 1.0

    def test_subcritical_record(self):
        result = percolation_analysis(PoissonFanout(2.0), 0.3)
        assert not result.supercritical
        assert result.giant_component_size == pytest.approx(0.0, abs=1e-6)
        assert result.u == pytest.approx(1.0, abs=1e-6)
        assert math.isfinite(result.mean_component_size)

    def test_q_zero_record(self):
        result = percolation_analysis(PoissonFanout(3.0), 0.0)
        assert result.giant_component_size == 0.0
        assert not result.supercritical

    def test_zero_mean_record(self):
        result = percolation_analysis(FixedFanout(0), 0.8)
        assert result.giant_component_size == 0.0
        assert result.critical_ratio == math.inf


class TestSpanningCondition:
    def test_condition_matches_threshold(self):
        dist = PoissonFanout(4.0)
        assert spanning_fanout_condition(dist, 0.3)
        assert not spanning_fanout_condition(dist, 0.2)

    def test_scale_factor(self):
        dist = PoissonFanout(4.0)
        assert critical_fanout_scale(dist, 0.5) == pytest.approx(2.0)
        assert critical_fanout_scale(dist, 0.25) == pytest.approx(1.0)

    def test_zero_mean(self):
        assert not spanning_fanout_condition(FixedFanout(0), 0.9)
        assert critical_fanout_scale(FixedFanout(0), 0.9) == 0.0

"""Unit tests for the fanout distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    BinomialFanout,
    EmpiricalFanout,
    FixedFanout,
    GeometricFanout,
    MixtureFanout,
    PoissonFanout,
    UniformFanout,
    ZipfFanout,
)


class TestCommonProperties:
    """Properties every distribution family must satisfy."""

    def test_pmf_sums_to_one(self, any_distribution):
        pmf = any_distribution.pmf_array()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_pmf_non_negative(self, any_distribution):
        assert np.all(any_distribution.pmf_array() >= 0)

    def test_mean_matches_pmf(self, any_distribution):
        pmf = any_distribution.pmf_array()
        k = np.arange(len(pmf))
        assert any_distribution.mean() == pytest.approx(float(np.sum(k * pmf)), abs=1e-6)

    def test_variance_matches_pmf(self, any_distribution):
        pmf = any_distribution.pmf_array()
        k = np.arange(len(pmf))
        mean = float(np.sum(k * pmf))
        var = float(np.sum((k - mean) ** 2 * pmf))
        assert any_distribution.variance() == pytest.approx(var, abs=1e-6)

    def test_second_factorial_moment_matches_pmf(self, any_distribution):
        pmf = any_distribution.pmf_array()
        k = np.arange(len(pmf))
        expected = float(np.sum(k * (k - 1) * pmf))
        assert any_distribution.second_factorial_moment() == pytest.approx(expected, abs=1e-6)

    def test_g0_at_one_is_one(self, any_distribution):
        assert any_distribution.g0(1.0) == pytest.approx(1.0, abs=1e-9)

    def test_g0_prime_at_one_is_mean(self, any_distribution):
        assert any_distribution.g0_prime(1.0) == pytest.approx(any_distribution.mean(), rel=1e-6)

    def test_g0_at_zero_is_p0(self, any_distribution):
        assert any_distribution.g0(0.0) == pytest.approx(any_distribution.pmf(0), abs=1e-9)

    def test_g1_at_one_is_one(self, any_distribution):
        assert any_distribution.g1(1.0) == pytest.approx(1.0, abs=1e-9)

    def test_g0_monotone_on_unit_interval(self, any_distribution):
        xs = np.linspace(0.0, 1.0, 11)
        values = np.asarray(any_distribution.g0(xs))
        assert np.all(np.diff(values) >= -1e-12)

    def test_sample_dtype_and_range(self, any_distribution):
        samples = any_distribution.sample(500, seed=123)
        assert samples.dtype == np.int64
        assert samples.shape == (500,)
        assert np.all(samples >= 0)

    def test_sample_mean_close_to_mean(self, any_distribution):
        samples = any_distribution.sample(20_000, seed=42)
        assert samples.mean() == pytest.approx(any_distribution.mean(), rel=0.08, abs=0.1)

    def test_sample_reproducible_with_same_seed(self, any_distribution):
        a = any_distribution.sample(100, seed=7)
        b = any_distribution.sample(100, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_sample_zero_size(self, any_distribution):
        assert any_distribution.sample(0, seed=1).shape == (0,)

    def test_sample_shape_tuple(self, any_distribution):
        samples = any_distribution.sample((6, 40), seed=9)
        assert samples.shape == (6, 40)
        assert samples.dtype == np.int64
        assert np.all(samples >= 0)
        # The matrix draw is the same distribution as the flat draw.
        flat = any_distribution.sample(6 * 40, seed=9)
        assert samples.mean() == pytest.approx(
            flat.mean(), abs=4.0 * (flat.std() + 0.1) / np.sqrt(flat.size)
        )

    def test_sample_empty_shape_tuple(self, any_distribution):
        assert any_distribution.sample((0, 5), seed=2).shape == (0, 5)

    def test_sample_invalid_shape_rejected(self, any_distribution):
        with pytest.raises(ValueError):
            any_distribution.sample((3, -1), seed=3)
        with pytest.raises(TypeError):
            any_distribution.sample((3, 2.5), seed=4)

    def test_cdf_is_monotone_and_bounded(self, any_distribution):
        values = [any_distribution.cdf(k) for k in range(10)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:], strict=False))
        assert all(0.0 <= v <= 1.0 + 1e-12 for v in values)

    def test_describe_contains_name_and_mean(self, any_distribution):
        info = any_distribution.describe()
        assert info["name"] == any_distribution.name
        assert info["mean"] == pytest.approx(any_distribution.mean())

    def test_repr_mentions_class_name(self, any_distribution):
        assert type(any_distribution).__name__ in repr(any_distribution)


class TestPoissonFanout:
    def test_closed_form_g0_matches_series(self):
        dist = PoissonFanout(3.0)
        x = 0.7
        series = sum(dist.pmf(k) * x**k for k in range(80))
        assert dist.g0(x) == pytest.approx(series, abs=1e-10)

    def test_g1_equals_g0(self):
        dist = PoissonFanout(2.5)
        xs = np.linspace(0, 1, 7)
        np.testing.assert_allclose(dist.g1(xs), dist.g0(xs), rtol=1e-12)

    def test_mean_and_variance_equal_z(self):
        dist = PoissonFanout(4.2)
        assert dist.mean() == pytest.approx(4.2)
        assert dist.variance() == pytest.approx(4.2)

    def test_second_factorial_moment_is_z_squared(self):
        assert PoissonFanout(3.0).second_factorial_moment() == pytest.approx(9.0)

    def test_invalid_mean_raises(self):
        with pytest.raises(ValueError):
            PoissonFanout(0.0)
        with pytest.raises(ValueError):
            PoissonFanout(-1.0)

    def test_array_evaluation_matches_scalar(self):
        dist = PoissonFanout(1.7)
        xs = np.array([0.0, 0.3, 1.0])
        arr = dist.g0(xs)
        for x, v in zip(xs, arr, strict=True):
            assert dist.g0(float(x)) == pytest.approx(v)


class TestFixedFanout:
    def test_pmf_is_point_mass(self):
        dist = FixedFanout(4)
        pmf = dist.pmf_array()
        assert pmf[4] == pytest.approx(1.0)
        assert pmf[:4].sum() == pytest.approx(0.0)

    def test_samples_are_constant(self):
        assert np.all(FixedFanout(3).sample(50, seed=1) == 3)

    def test_zero_fanout_allowed(self):
        dist = FixedFanout(0)
        assert dist.mean() == 0.0
        assert np.all(dist.sample(10, seed=1) == 0)

    def test_g1_requires_positive_mean(self):
        with pytest.raises(ValueError):
            FixedFanout(0).g1(0.5)

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            FixedFanout(-1)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            FixedFanout(2.5)


class TestBinomialFanout:
    def test_mean_and_variance(self):
        dist = BinomialFanout(10, 0.3)
        assert dist.mean() == pytest.approx(3.0)
        assert dist.variance() == pytest.approx(2.1)

    def test_pmf_matches_scipy_support(self):
        dist = BinomialFanout(5, 0.5)
        pmf = dist.pmf_array()
        assert len(pmf) == 6
        assert pmf[0] == pytest.approx(0.5**5)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BinomialFanout(5, 1.5)

    def test_edge_probability_zero(self):
        dist = BinomialFanout(5, 0.0)
        assert dist.mean() == 0.0
        assert dist.pmf(0) == pytest.approx(1.0)


class TestGeometricFanout:
    def test_from_mean_round_trip(self):
        dist = GeometricFanout.from_mean(4.0)
        assert dist.mean() == pytest.approx(4.0, rel=1e-9)

    def test_support_starts_at_zero(self):
        dist = GeometricFanout(0.5)
        assert dist.pmf(0) == pytest.approx(0.5)

    def test_samples_shifted_support(self):
        samples = GeometricFanout(0.9).sample(1000, seed=3)
        assert samples.min() == 0

    def test_prob_one_is_degenerate_at_zero(self):
        dist = GeometricFanout(1.0)
        assert dist.mean() == pytest.approx(0.0)
        assert dist.pmf(0) == pytest.approx(1.0)

    def test_prob_zero_rejected(self):
        with pytest.raises(ValueError):
            GeometricFanout(0.0)


class TestUniformFanout:
    def test_mean_of_range(self):
        assert UniformFanout(2, 6).mean() == pytest.approx(4.0)

    def test_pmf_uniform_on_support(self):
        pmf = UniformFanout(1, 4).pmf_array()
        np.testing.assert_allclose(pmf[1:5], 0.25)
        assert pmf[0] == 0.0

    def test_singleton_range(self):
        dist = UniformFanout(3, 3)
        assert dist.mean() == 3.0
        assert dist.variance() == pytest.approx(0.0)

    def test_samples_within_range(self):
        samples = UniformFanout(2, 5).sample(1000, seed=11)
        assert samples.min() >= 2 and samples.max() <= 5

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            UniformFanout(5, 2)


class TestZipfFanout:
    def test_pmf_decreasing(self):
        pmf = ZipfFanout(2.0, 20).pmf_array()
        tail = pmf[1:]
        assert np.all(np.diff(tail) <= 1e-15)

    def test_support_excludes_zero(self):
        dist = ZipfFanout(1.5, 10)
        assert dist.pmf(0) == 0.0
        samples = dist.sample(500, seed=5)
        assert samples.min() >= 1

    def test_truncation_respected(self):
        samples = ZipfFanout(1.2, 7).sample(1000, seed=6)
        assert samples.max() <= 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfFanout(0.0, 10)
        with pytest.raises(ValueError):
            ZipfFanout(2.0, 0)


class TestEmpiricalFanout:
    def test_normalises_within_tolerance(self):
        dist = EmpiricalFanout([0.25, 0.25, 0.5])
        assert dist.pmf_array().sum() == pytest.approx(1.0)

    def test_rejects_non_normalised(self):
        with pytest.raises(ValueError):
            EmpiricalFanout([0.5, 0.1])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EmpiricalFanout([1.2, -0.2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalFanout([])

    def test_from_samples_matches_histogram(self):
        dist = EmpiricalFanout.from_samples([0, 1, 1, 2, 2, 2, 2, 3])
        assert dist.pmf(2) == pytest.approx(0.5)
        assert dist.mean() == pytest.approx(np.mean([0, 1, 1, 2, 2, 2, 2, 3]))

    def test_from_samples_rejects_negative(self):
        with pytest.raises(ValueError):
            EmpiricalFanout.from_samples([1, -2])

    def test_pmf_beyond_support_is_zero(self):
        dist = EmpiricalFanout([0.5, 0.5])
        assert dist.pmf(10) == 0.0


class TestMixtureFanout:
    def test_mean_is_weighted_average(self):
        mix = MixtureFanout([FixedFanout(2), FixedFanout(6)], [0.5, 0.5])
        assert mix.mean() == pytest.approx(4.0)

    def test_weights_normalised(self):
        mix = MixtureFanout([FixedFanout(1), FixedFanout(3)], [2.0, 2.0])
        assert mix.mean() == pytest.approx(2.0)

    def test_pmf_combines_components(self):
        mix = MixtureFanout([FixedFanout(1), FixedFanout(3)], [0.3, 0.7])
        assert mix.pmf(1) == pytest.approx(0.3)
        assert mix.pmf(3) == pytest.approx(0.7)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MixtureFanout([FixedFanout(1)], [0.5, 0.5])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            MixtureFanout([FixedFanout(1), FixedFanout(2)], [0.0, 0.0])

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            MixtureFanout([], [])

    def test_sampling_uses_both_components(self):
        mix = MixtureFanout([FixedFanout(1), FixedFanout(9)], [0.5, 0.5])
        samples = mix.sample(2000, seed=13)
        assert set(np.unique(samples)) == {1, 9}
        assert samples.mean() == pytest.approx(5.0, abs=0.5)


class TestPropertyBased:
    """Hypothesis property tests on the distribution machinery."""

    @given(z=st.floats(min_value=0.1, max_value=15.0))
    @settings(max_examples=40, deadline=None)
    def test_poisson_generating_function_identity(self, z):
        dist = PoissonFanout(z)
        assert dist.g0(1.0) == pytest.approx(1.0, abs=1e-9)
        assert dist.g0_prime(1.0) == pytest.approx(z, rel=1e-9)
        assert dist.g0(0.0) == pytest.approx(math.exp(-z), rel=1e-9)

    @given(
        weights=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=6)
    )
    @settings(max_examples=30, deadline=None)
    def test_empirical_pmf_normalisation(self, weights):
        arr = np.asarray(weights)
        dist = EmpiricalFanout(arr / arr.sum())
        assert dist.pmf_array().sum() == pytest.approx(1.0, abs=1e-9)
        assert dist.g0(1.0) == pytest.approx(1.0, abs=1e-9)

    @given(
        low=st.integers(min_value=0, max_value=5),
        width=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_mean_formula(self, low, width):
        dist = UniformFanout(low, low + width)
        assert dist.mean() == pytest.approx((2 * low + width) / 2.0)

"""Unit tests for the generating-function machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import FixedFanout, GeometricFanout, PoissonFanout
from repro.core.generating import (
    GeneratingFunction,
    build_generating_functions,
)


class TestGeneratingFunctionFromPMF:
    def test_evaluation_matches_polynomial(self):
        gf = GeneratingFunction.from_pmf([0.2, 0.3, 0.5])
        x = 0.4
        assert gf(x) == pytest.approx(0.2 + 0.3 * x + 0.5 * x**2)

    def test_prime_matches_derivative(self):
        gf = GeneratingFunction.from_pmf([0.2, 0.3, 0.5])
        x = 0.7
        assert gf.prime(x) == pytest.approx(0.3 + 1.0 * x)

    def test_double_prime(self):
        gf = GeneratingFunction.from_pmf([0.1, 0.2, 0.3, 0.4])
        x = 0.5
        assert gf.double_prime(x) == pytest.approx(2 * 0.3 + 6 * 0.4 * x)

    def test_mean_and_normalisation(self):
        gf = GeneratingFunction.from_pmf([0.5, 0.25, 0.25])
        assert gf.normalisation() == pytest.approx(1.0)
        assert gf.mean() == pytest.approx(0.75)

    def test_scaled(self):
        gf = GeneratingFunction.from_pmf([0.4, 0.6])
        scaled = gf.scaled(0.5)
        assert scaled(1.0) == pytest.approx(0.5)
        assert scaled.prime(1.0) == pytest.approx(0.3)

    def test_array_input(self):
        gf = GeneratingFunction.from_pmf([0.5, 0.5])
        xs = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(gf(xs), [0.5, 0.75, 1.0])

    def test_rejects_empty_pmf(self):
        with pytest.raises(ValueError):
            GeneratingFunction.from_pmf([])

    def test_rejects_negative_pmf(self):
        with pytest.raises(ValueError):
            GeneratingFunction.from_pmf([0.5, -0.5, 1.0])

    def test_requires_coefficients_or_callable(self):
        with pytest.raises(ValueError):
            GeneratingFunction()


class TestGeneratingFunctionFromCallable:
    def test_closed_form_evaluation(self):
        dist = PoissonFanout(2.0)
        gf = GeneratingFunction.from_distribution(dist)
        assert gf(0.5) == pytest.approx(dist.g0(0.5))
        assert gf.prime(0.5) == pytest.approx(dist.g0_prime(0.5))
        assert gf.double_prime(0.5) == pytest.approx(dist.g0_double_prime(0.5))

    def test_numeric_derivative_fallback(self):
        gf = GeneratingFunction(func=lambda x: np.exp(2.0 * (np.asarray(x) - 1.0)))
        # No derivative supplied: central differences should still be accurate.
        assert gf.prime(1.0) == pytest.approx(2.0, rel=1e-4)

    def test_scaled_callable(self):
        dist = PoissonFanout(3.0)
        gf = GeneratingFunction.from_distribution(dist).scaled(0.25)
        assert gf(1.0) == pytest.approx(0.25)
        assert gf.prime(1.0) == pytest.approx(0.75)


class TestBuildGeneratingFunctions:
    def test_f_functions_are_scaled_by_q(self):
        gfs = build_generating_functions(PoissonFanout(4.0), 0.5)
        assert gfs.f0(1.0) == pytest.approx(0.5)
        assert gfs.f1(1.0) == pytest.approx(0.5)
        assert gfs.g0(1.0) == pytest.approx(1.0)

    def test_mean_fanout_recorded(self):
        gfs = build_generating_functions(PoissonFanout(2.5), 0.8)
        assert gfs.mean_fanout == pytest.approx(2.5)

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            build_generating_functions(PoissonFanout(2.0), 1.5)

    def test_result_is_frozen(self):
        gfs = build_generating_functions(PoissonFanout(2.0), 0.7)
        with pytest.raises(AttributeError):
            gfs.q = 0.3  # type: ignore[misc]


class TestSelfConsistentU:
    def test_subcritical_returns_one(self):
        # z*q = 0.5 < 1: no giant component, u = 1.
        gfs = build_generating_functions(PoissonFanout(1.0), 0.5)
        assert gfs.self_consistent_u() == pytest.approx(1.0, abs=1e-6)

    def test_supercritical_u_below_one(self):
        gfs = build_generating_functions(PoissonFanout(4.0), 0.9)
        u = gfs.self_consistent_u()
        assert 0.0 <= u < 1.0

    def test_u_satisfies_fixed_point_equation(self):
        dist = PoissonFanout(3.0)
        q = 0.8
        gfs = build_generating_functions(dist, q)
        u = gfs.self_consistent_u()
        assert u == pytest.approx(1.0 - q + q * dist.g1(u), abs=1e-8)

    def test_q_zero_returns_one(self):
        gfs = build_generating_functions(PoissonFanout(3.0), 0.0)
        assert gfs.self_consistent_u() == 1.0

    def test_fixed_fanout_u(self):
        dist = FixedFanout(3)
        q = 0.9
        gfs = build_generating_functions(dist, q)
        u = gfs.self_consistent_u()
        assert u == pytest.approx(1.0 - q + q * dist.g1(u), abs=1e-8)
        assert u < 1.0

    @given(
        z=st.floats(min_value=0.2, max_value=10.0),
        q=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_u_always_in_unit_interval_and_consistent(self, z, q):
        dist = PoissonFanout(z)
        gfs = build_generating_functions(dist, q)
        u = gfs.self_consistent_u()
        assert 0.0 <= u <= 1.0
        assert u == pytest.approx(1.0 - q + q * dist.g1(u), abs=1e-6)

    @given(
        q=st.floats(min_value=0.05, max_value=1.0),
        prob=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_geometric_u_consistent(self, q, prob):
        dist = GeometricFanout(prob)
        gfs = build_generating_functions(dist, q)
        u = gfs.self_consistent_u()
        assert 0.0 <= u <= 1.0
        assert u == pytest.approx(1.0 - q + q * float(dist.g1(u)), abs=1e-5)

"""Tests of surface precomputation and the versioned artifact contract."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serving.surface import (
    GOSSIP_PROTOCOLS,
    SURFACE_FORMAT_VERSION,
    ReliabilitySurface,
    SurfaceGrid,
    SurfaceValidationError,
    build_surface,
    load_surface,
)

SEED = 20080149


def tiny_grid(**overrides) -> SurfaceGrid:
    defaults = dict(ns=(64,), qs=(0.8, 1.0), losses=(0.0, 0.2), fanouts=(2.0, 5.0))
    defaults.update(overrides)
    return SurfaceGrid(**defaults)


@pytest.fixture(scope="module")
def surface() -> ReliabilitySurface:
    return build_surface(tiny_grid(), repetitions=16, seed=SEED)


class TestSurfaceGrid:
    def test_shape_and_cells(self):
        grid = tiny_grid()
        assert grid.shape == (1, 2, 2, 2, 1)
        cells = list(grid.cells())
        assert len(cells) == 8
        # C order: the last axis varies fastest.
        assert cells[0][1:] == (64, 0.8, 0.0, 2.0, 0)
        assert cells[1][1:] == (64, 0.8, 0.0, 5.0, 0)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(ns=()),
            dict(qs=(0.9, 0.8)),  # not strictly increasing
            dict(losses=(0.0, 0.0)),  # duplicates
            dict(fanouts=(2.0, float("nan"))),
            dict(rounds=(0, 3)),  # sentinel may not mix with real horizons
            dict(rounds=(2.5,)),  # horizons must be integral
        ],
    )
    def test_invalid_axes_rejected(self, bad):
        with pytest.raises((SurfaceValidationError, ValueError)):
            tiny_grid(**bad)

    def test_manifest_round_trip(self):
        grid = tiny_grid(rounds=(2, 4))
        assert SurfaceGrid.from_manifest(grid.to_manifest()) == grid


class TestBuildSurface:
    def test_certificate_ordering(self, surface):
        assert np.all(surface.ci_low >= 0.0)
        assert np.all(surface.ci_low <= surface.mean + 1e-12)
        assert np.all(surface.mean <= surface.ci_high + 1e-12)
        assert np.all(surface.ci_high <= 1.0)
        assert np.all(surface.cost >= 0.0)

    def test_reliability_rises_with_fanout(self, surface):
        # At q=1, loss=0: fanout 5 beats fanout 2 on a 64-member group.
        lossless_q1 = surface.mean[0, 1, 0, :, 0]
        assert lossless_q1[1] >= lossless_q1[0]

    def test_deterministic(self):
        a = build_surface(tiny_grid(), repetitions=8, seed=SEED)
        b = build_surface(tiny_grid(), repetitions=8, seed=SEED)
        assert np.array_equal(a.mean, b.mean)
        assert np.array_equal(a.ci_low, b.ci_low)

    def test_parallel_matches_serial(self):
        serial = build_surface(tiny_grid(), repetitions=8, seed=SEED, processes=1)
        parallel = build_surface(tiny_grid(), repetitions=8, seed=SEED, processes=2)
        assert np.array_equal(serial.mean, parallel.mean)

    def test_protocol_surface_needs_horizons(self):
        with pytest.raises(SurfaceValidationError):
            build_surface(tiny_grid(), protocol="pbcast", repetitions=4, seed=SEED)
        with pytest.raises(SurfaceValidationError):
            build_surface(
                tiny_grid(rounds=(2, 4)), protocol="gossip-poisson", repetitions=4, seed=SEED
            )

    def test_protocol_surface_builds(self):
        surface = build_surface(
            tiny_grid(fanouts=(2.0, 4.0), rounds=(2, 4)),
            protocol="pbcast",
            repetitions=8,
            seed=SEED,
        )
        assert surface.protocol == "pbcast"
        assert surface.mean.shape == (1, 2, 2, 2, 2)
        # More rounds cannot hurt a push protocol (same seed per cell pair
        # is not guaranteed, so compare the certified lower bound loosely).
        assert surface.mean[0, 1, 0, 1, 1] >= surface.mean[0, 1, 0, 1, 0] - 0.2

    def test_unknown_protocol_rejected(self):
        with pytest.raises((SurfaceValidationError, KeyError, ValueError)):
            build_surface(tiny_grid(), protocol="carrier-pigeon", repetitions=4, seed=SEED)

    def test_gossip_families_cover_zoo(self):
        assert "gossip-poisson" in GOSSIP_PROTOCOLS
        assert len(GOSSIP_PROTOCOLS) == 4


class TestArtifactContract:
    def test_save_load_round_trip(self, surface, tmp_path):
        npz_path, manifest_path = surface.save(tmp_path / "surf")
        assert npz_path.suffix == ".npz"
        assert manifest_path.name.endswith(".manifest.json")
        loaded = load_surface(npz_path)
        assert loaded.grid == surface.grid
        assert loaded.protocol == surface.protocol
        assert loaded.seed == surface.seed
        assert np.array_equal(loaded.mean, surface.mean)
        assert np.array_equal(loaded.ci_low, surface.ci_low)
        assert np.array_equal(loaded.cost, surface.cost)

    def test_missing_manifest_refused(self, surface, tmp_path):
        npz_path, manifest_path = surface.save(tmp_path / "surf")
        manifest_path.unlink()
        with pytest.raises(SurfaceValidationError, match="manifest"):
            load_surface(npz_path)

    def _tamper(self, manifest_path, **changes):
        manifest = json.loads(manifest_path.read_text())
        manifest.update(changes)
        manifest_path.write_text(json.dumps(manifest))

    def test_format_version_mismatch_refused(self, surface, tmp_path):
        npz_path, manifest_path = surface.save(tmp_path / "surf")
        self._tamper(manifest_path, format_version=SURFACE_FORMAT_VERSION + 1)
        with pytest.raises(SurfaceValidationError, match="format"):
            load_surface(npz_path)

    def test_engine_version_mismatch_refused(self, surface, tmp_path):
        npz_path, manifest_path = surface.save(tmp_path / "surf")
        self._tamper(manifest_path, engine_version="0.0.1-somebody-else")
        with pytest.raises(SurfaceValidationError, match="engine"):
            load_surface(npz_path)
        # The explicit escape hatch still works (and keeps the checksum gate).
        loaded = load_surface(npz_path, allow_version_mismatch=True)
        assert np.array_equal(loaded.mean, surface.mean)

    def test_seed_mismatch_refused(self, surface, tmp_path):
        npz_path, manifest_path = surface.save(tmp_path / "surf")
        self._tamper(manifest_path, seed=surface.seed + 1)
        with pytest.raises(SurfaceValidationError, match="seed"):
            load_surface(npz_path)

    def test_corrupted_arrays_refused(self, surface, tmp_path):
        npz_path, _ = surface.save(tmp_path / "surf")
        blob = bytearray(npz_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        npz_path.write_bytes(bytes(blob))
        with pytest.raises(SurfaceValidationError, match="checksum"):
            load_surface(npz_path)

    def test_grid_mismatch_refused(self, surface, tmp_path):
        npz_path, manifest_path = surface.save(tmp_path / "surf")
        manifest = json.loads(manifest_path.read_text())
        manifest["grid"]["qs"] = [0.7, 1.0]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SurfaceValidationError):
            load_surface(npz_path)

    def test_manifest_content(self, surface):
        manifest = surface.manifest()
        assert manifest["format_version"] == SURFACE_FORMAT_VERSION
        assert manifest["protocol"] == "gossip-poisson"
        assert manifest["repetitions"] == 16
        assert manifest["grid"]["fanouts"] == [2.0, 5.0]

"""Tests of interpolated serving: conservatism, caching, inverse queries."""

from __future__ import annotations

import math
from itertools import product

import pytest

from repro.serving.query import (
    LRUCache,
    SurfaceCoverageError,
    SurfaceQueryEngine,
    dimension_from_surface,
    pareto_from_surface,
)
from repro.serving.surface import SurfaceGrid, build_surface

SEED = 20080149


@pytest.fixture(scope="module")
def surface():
    return build_surface(
        SurfaceGrid(
            ns=(128,),
            qs=(0.7, 0.85, 1.0),
            losses=(0.0, 0.2),
            fanouts=(1.5, 3.0, 6.0, 10.0),
        ),
        repetitions=32,
        seed=SEED,
    )


@pytest.fixture(scope="module")
def protocol_surface():
    return build_surface(
        SurfaceGrid(ns=(96,), qs=(0.8, 1.0), losses=(0.0,), fanouts=(2.0, 4.0, 7.0),
                    rounds=(2, 4, 6)),
        protocol="pbcast",
        repetitions=32,
        seed=SEED,
    )


def fresh_engine(surface, **kwargs) -> SurfaceQueryEngine:
    return SurfaceQueryEngine(surface, **kwargs)


class TestLRUCache:
    def test_eviction_is_deterministic(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        assert cache.keys() == ("a", "b", "c")
        cache.get("a")  # refresh: "b" is now the oldest
        cache.put("d", "D")
        assert cache.keys() == ("c", "a", "d")
        assert cache.get("b") is None
        assert cache.info() == {
            "capacity": 3, "size": 3, "hits": 1, "misses": 1, "evictions": 1,
        }

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        cache.put("c", 3)  # evicts "b"
        assert cache.keys() == ("a", "c")
        assert cache.get("a") == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestInterpolation:
    def test_exact_hit_returns_cell(self, surface):
        engine = fresh_engine(surface)
        answer = engine.query(n=128, q=0.85, loss=0.2, fanout=3.0)
        assert answer.exact
        index = (0, 1, 1, 1, 0)
        assert answer.reliability == pytest.approx(float(surface.mean[index]))
        assert answer.ci_low == pytest.approx(float(surface.ci_low[index]))
        assert answer.cost == pytest.approx(float(surface.cost[index]))

    def test_certificate_is_conservative(self, surface):
        """Served ci_low <= every enclosing corner's ci_low (and dually ci_high)."""
        engine = fresh_engine(surface)
        answer = engine.query(n=128, q=0.9, loss=0.1, fanout=4.5)
        assert not answer.exact
        # q=0.9 in (0.85, 1.0), loss=0.1 in (0.0, 0.2), fanout=4.5 in (3.0, 6.0)
        corners = list(product([1, 2], [0, 1], [1, 2]))
        corner_lows = [float(surface.ci_low[0, qi, li, fi, 0]) for qi, li, fi in corners]
        corner_highs = [float(surface.ci_high[0, qi, li, fi, 0]) for qi, li, fi in corners]
        corner_means = [float(surface.mean[0, qi, li, fi, 0]) for qi, li, fi in corners]
        assert answer.ci_low == pytest.approx(min(corner_lows))
        assert answer.ci_high == pytest.approx(max(corner_highs))
        assert min(corner_means) - 1e-12 <= answer.reliability <= max(corner_means) + 1e-12
        assert answer.ci_low <= answer.reliability <= answer.ci_high

    def test_interpolation_matches_hand_weights(self, surface):
        engine = fresh_engine(surface)
        answer = engine.query(n=128, q=0.85, loss=0.0, fanout=4.5)  # only fanout off-knot
        w = (4.5 - 3.0) / (6.0 - 3.0)
        expected = (1 - w) * float(surface.mean[0, 1, 0, 1, 0]) + w * float(
            surface.mean[0, 1, 0, 2, 0]
        )
        assert answer.reliability == pytest.approx(expected)

    def test_off_grid_raises(self, surface):
        engine = fresh_engine(surface)
        with pytest.raises(SurfaceCoverageError):
            engine.query(n=128, q=0.5, loss=0.0, fanout=3.0)
        with pytest.raises(SurfaceCoverageError):
            engine.query(n=128, q=0.9, loss=0.0, fanout=12.0)
        assert not engine.covers(n=256, q=0.9, loss=0.0, fanout=3.0)
        assert engine.covers(n=128, q=0.9, loss=0.0, fanout=3.0)

    def test_query_caching(self, surface):
        engine = fresh_engine(surface, cache_size=8)
        first = engine.query(n=128, q=0.9, loss=0.1, fanout=4.0)
        second = engine.query(n=128, q=0.9, loss=0.1, fanout=4.0)
        assert first is second
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_protocol_surface_rounds_default(self, protocol_surface):
        engine = fresh_engine(protocol_surface)
        assert not engine.horizon_free
        answer = engine.query(n=96, q=0.9, loss=0.0, fanout=4.0)
        assert answer.rounds == 6  # defaults to the largest horizon
        shorter = engine.query(n=96, q=0.9, loss=0.0, fanout=4.0, rounds=2)
        assert shorter.rounds == 2


class TestDimensionFromSurface:
    def test_min_fanout_objective(self, surface):
        engine = fresh_engine(surface)
        answer = dimension_from_surface(
            engine, n=128, q=0.9, target_reliability=0.6, loss=0.0,
            allow_live_fallback=False,
        )
        assert answer.source == "surface"
        assert answer.feasible
        assert answer.ci_low >= 0.6
        assert answer.fanout in surface.grid.fanouts
        # Minimality: no smaller grid fanout certifies.
        for fanout in surface.grid.fanouts:
            if fanout < answer.fanout:
                served = engine.query(n=128, q=0.9, loss=0.0, fanout=fanout)
                assert served.ci_low < 0.6

    def test_min_cost_objective_never_costlier(self, surface):
        engine = fresh_engine(surface)
        by_fanout = dimension_from_surface(
            engine, n=128, q=0.9, target_reliability=0.6, loss=0.0,
            objective="min_fanout", allow_live_fallback=False,
        )
        by_cost = dimension_from_surface(
            engine, n=128, q=0.9, target_reliability=0.6, loss=0.0,
            objective="min_cost", allow_live_fallback=False,
        )
        assert by_cost.feasible
        assert by_cost.ci_low >= 0.6
        assert by_cost.cost <= by_fanout.cost + 1e-12

    def test_invalid_objective_rejected(self, surface):
        with pytest.raises(ValueError):
            dimension_from_surface(
                fresh_engine(surface), n=128, q=0.9, target_reliability=0.6,
                objective="min_regret",
            )

    def test_no_fallback_returns_infeasible(self, surface):
        engine = fresh_engine(surface)
        answer = dimension_from_surface(
            engine, n=128, q=0.9, target_reliability=0.999, loss=0.2,
            allow_live_fallback=False,
        )
        assert not answer.feasible
        assert answer.source == "surface"
        assert math.isnan(answer.achieved_reliability)
        assert answer.fanout == surface.grid.fanouts[-1]

    def test_live_fallback_invoked_off_grid(self, surface):
        calls = {}

        def stub_solver(n, q, target, **kwargs):
            calls.update(n=n, q=q, target=target, **kwargs)

            class Live:
                fanout = 7.5
                rounds = None
                achieved_reliability = 0.97
                ci_low = 0.95
                ci_high = 0.99
                feasible = True

            return Live()

        engine = fresh_engine(surface)
        answer = dimension_from_surface(
            engine, n=128, q=0.5, target_reliability=0.9,  # q off-grid
            live_solver=stub_solver, seed=7,
        )
        assert answer.source == "live"
        assert answer.fanout == 7.5
        assert answer.feasible
        assert math.isnan(answer.cost)
        assert calls["q"] == 0.5 and calls["seed"] == 7
        # Gossip surfaces forward their spread-conditioning to the live solve.
        assert calls["conditional_on_spread"] is True

    def test_surface_path_never_simulates(self, surface):
        def exploding_solver(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("live solver must not be called on-grid")

        answer = dimension_from_surface(
            fresh_engine(surface), n=128, q=0.85, target_reliability=0.6,
            live_solver=exploding_solver,
        )
        assert answer.source == "surface"


class TestParetoFromSurface:
    def test_frontier_certified_and_non_dominated(self, protocol_surface):
        engine = fresh_engine(protocol_surface)
        frontier = pareto_from_surface(engine, n=96, q=0.9, target_reliability=0.6)
        assert frontier
        for candidate in frontier:
            assert candidate.ci_low >= 0.6
            for other in frontier:
                if other is candidate:
                    continue
                dominates = (
                    other.fanout <= candidate.fanout
                    and other.rounds <= candidate.rounds
                    and (other.fanout, other.rounds) != (candidate.fanout, candidate.rounds)
                )
                assert not dominates

    def test_empty_when_nothing_certifies(self, protocol_surface):
        engine = fresh_engine(protocol_surface)
        assert pareto_from_surface(engine, n=96, q=0.9, target_reliability=0.9999) == ()

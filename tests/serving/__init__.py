"""Tests of the serving subsystem (repro.serving)."""

"""Tests of the JSON-lines serving loop and of the serving doctests."""

from __future__ import annotations

import doctest
import io
import json

import pytest

import repro.serving.query
import repro.serving.serve
import repro.serving.surface
from repro.serving.query import SurfaceQueryEngine
from repro.serving.serve import handle_request, serve_loop
from repro.serving.surface import SurfaceGrid, build_surface

SEED = 20080149


@pytest.fixture(scope="module")
def surface():
    return build_surface(
        SurfaceGrid(ns=(64,), qs=(0.8, 1.0), losses=(0.0, 0.2), fanouts=(2.0, 5.0, 9.0)),
        repetitions=24,
        seed=SEED,
    )


@pytest.fixture
def engine(surface) -> SurfaceQueryEngine:
    return SurfaceQueryEngine(surface)


class TestHandleRequest:
    def test_reliability(self, engine):
        response = handle_request(
            engine, {"op": "reliability", "q": 0.9, "loss": 0.1, "fanout": 4.0}
        )
        assert response["ok"]
        assert 0.0 <= response["ci_low"] <= response["reliability"] <= response["ci_high"] <= 1.0
        assert response["n"] == 64  # single-n surface: n may be omitted

    def test_dimension(self, engine):
        response = handle_request(engine, {"op": "dimension", "q": 0.9, "target": 0.6})
        assert response["ok"]
        assert response["source"] == "surface"
        assert response["ci_low"] >= 0.6

    def test_pareto(self, engine):
        response = handle_request(engine, {"op": "pareto", "q": 0.9, "target": 0.6})
        assert response["ok"]
        assert isinstance(response["frontier"], list)

    def test_info(self, engine):
        response = handle_request(engine, {"op": "info"})
        assert response["ok"]
        assert response["manifest"]["protocol"] == "gossip-poisson"
        assert "hits" in response["cache"]

    def test_id_echoed(self, engine):
        ok = handle_request(engine, {"op": "info", "id": "req-1"})
        assert ok["id"] == "req-1"
        bad = handle_request(engine, {"op": "nope", "id": 2})
        assert not bad["ok"] and bad["id"] == 2

    def test_unknown_op(self, engine):
        response = handle_request(engine, {"op": "teleport"})
        assert not response["ok"]
        assert "teleport" in response["error"]

    def test_missing_field(self, engine):
        response = handle_request(engine, {"op": "reliability", "q": 0.9})
        assert not response["ok"]
        assert "fanout" in response["error"]

    def test_off_grid_is_an_error_not_a_crash(self, engine):
        response = handle_request(
            engine, {"op": "reliability", "q": 0.5, "loss": 0.0, "fanout": 4.0}
        )
        assert not response["ok"]

    def test_non_object_request(self, engine):
        assert not handle_request(engine, [1, 2, 3])["ok"]

    def test_responses_are_json_serialisable(self, engine):
        # NaN cost (infeasible, no fallback) must not produce invalid JSON.
        response = handle_request(
            engine, {"op": "dimension", "q": 0.8, "loss": 0.2, "target": 0.99999}
        )
        text = json.dumps(response, allow_nan=False)
        assert json.loads(text)["feasible"] is False


class TestServeLoop:
    def run_loop(self, surface, lines) -> tuple:
        out = io.StringIO()
        served = serve_loop(surface, io.StringIO(lines), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        return served, responses

    def test_answers_each_line(self, surface):
        served, responses = self.run_loop(
            surface,
            '{"op": "reliability", "q": 0.9, "loss": 0.0, "fanout": 4}\n'
            '{"op": "dimension", "q": 0.9, "target": 0.6}\n',
        )
        assert served == 2
        assert all(r["ok"] for r in responses)

    def test_blank_lines_skipped_and_bad_json_survives(self, surface):
        served, responses = self.run_loop(
            surface,
            '\n   \n{not json}\n{"op": "info"}\n',
        )
        assert served == 2
        assert not responses[0]["ok"]
        assert "invalid JSON" in responses[0]["error"]
        assert responses[1]["ok"]

    def test_shutdown_stops_the_loop(self, surface):
        served, responses = self.run_loop(
            surface,
            '{"op": "shutdown"}\n{"op": "info"}\n',
        )
        assert served == 1
        assert responses[0]["shutdown"] is True


class TestServingDoctests:
    """Run the serving layer's docstring examples as part of tier-1.

    CI additionally runs ``pytest --doctest-modules src/repro/serving``;
    this keeps the examples honest even under the plain test command.
    """

    @pytest.mark.parametrize(
        "module",
        [repro.serving.surface, repro.serving.query, repro.serving.serve],
        ids=lambda m: m.__name__,
    )
    def test_doctests_pass(self, module):
        result = doctest.testmod(module, verbose=False)
        assert result.attempted > 0
        assert result.failed == 0

"""Shared statistical-equivalence assertions for engine-vs-reference tests.

Every batched engine in this repository (the gossip engine, the graph
ensemble, the multi-protocol engine) must agree with its scalar reference
**in distribution**: the two consume randomness in different orders, so
per-seed outputs differ while every statistic of interest must match.  These
helpers centralise the comparisons the test suite uses to pin them together,
replacing the ad-hoc per-file KS/z-test code that used to live in
``tests/simulation/test_gossip_batch.py``:

* :func:`assert_same_distribution` — two-sample Kolmogorov-Smirnov test on
  any per-replica statistic (delivery counts, message counts, ...).
* :func:`assert_same_counts_chisquare` — chi-square homogeneity test on
  binned delivery counts (the classical categorical check; complements KS,
  which is weakest in the tails).
* :func:`assert_reliability_within_band` — tolerance-banded comparison of
  mean reliabilities: the gap must be explained by the combined Monte-Carlo
  standard errors or fall inside an absolute band.
* :func:`assert_means_close` — the same banded comparison for any samples.

All assertions are deterministic given deterministic inputs: the suite runs
them on fixed seeds, so a failure is a real behavioural regression, not test
flakiness.  ``alpha`` defaults are deliberately small (0.01): with fixed
seeds we only need the statistic to be *far* from the rejection region.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "assert_same_distribution",
    "assert_same_counts_chisquare",
    "assert_reliability_within_band",
    "assert_means_close",
]


def assert_same_distribution(a, b, *, alpha: float = 0.01, label: str = "sample") -> None:
    """Assert two samples come from the same distribution (two-sample KS).

    Parameters
    ----------
    a, b:
        Per-replica statistics from the two engines (any 1-D numeric
        samples; scalar-engine lists and batched ``(R,)`` arrays alike).
    alpha:
        Rejection level: the test fails when the KS p-value drops below it.
    label:
        Statistic name used in the failure message.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError(f"{label}: cannot compare empty samples")
    result = stats.ks_2samp(a, b)
    assert result.pvalue > alpha, (
        f"{label}: KS test rejects equality (p={result.pvalue:.5f} <= {alpha}, "
        f"statistic={result.statistic:.4f}, means {a.mean():.3f} vs {b.mean():.3f})"
    )


def assert_same_counts_chisquare(
    a,
    b,
    *,
    alpha: float = 0.01,
    max_bins: int = 12,
    label: str = "counts",
) -> None:
    """Assert two count samples are homogeneous (chi-square on binned counts).

    The pooled sample is cut at its quantiles into at most ``max_bins``
    categories (bins with too few observations merge automatically because
    quantile edges coincide), then a 2×k chi-square homogeneity test runs on
    the per-engine histograms.  Degenerate cases — both samples constant and
    equal — pass trivially.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError(f"{label}: cannot compare empty samples")
    pooled = np.concatenate([a, b])
    if np.all(pooled == pooled[0]):
        return  # both engines produced one identical constant — equivalent
    edges = np.unique(np.quantile(pooled, np.linspace(0.0, 1.0, max_bins + 1)))
    if edges.size < 3:
        # Two distinct values at most: compare their frequencies directly.
        edges = np.array([pooled.min() - 0.5, np.mean(edges), pooled.max() + 0.5])
    else:
        edges[0] -= 0.5
        edges[-1] += 0.5
    hist_a, _ = np.histogram(a, bins=edges)
    hist_b, _ = np.histogram(b, bins=edges)
    occupied = (hist_a + hist_b) > 0
    table = np.vstack([hist_a[occupied], hist_b[occupied]])
    if table.shape[1] < 2:
        return  # a single occupied category cannot disagree
    result = stats.chi2_contingency(table)
    pvalue = result[1]
    assert pvalue > alpha, (
        f"{label}: chi-square homogeneity test rejects equality "
        f"(p={pvalue:.5f} <= {alpha}, {table.shape[1]} categories)"
    )


def assert_means_close(
    a,
    b,
    *,
    band: float = 0.02,
    z: float = 4.0,
    label: str = "statistic",
) -> None:
    """Assert two sample means agree within combined standard errors or a band.

    The gap must satisfy ``|mean(a) - mean(b)| < max(z · SE_combined, band)``
    — the two-sample z-bound with an absolute floor for near-deterministic
    statistics whose variance collapses to ~0.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError(f"{label}: cannot compare empty samples")
    gap = abs(float(a.mean()) - float(b.mean()))
    combined_se = float(np.sqrt(a.var() / a.size + b.var() / b.size))
    tolerance = max(z * combined_se, band)
    assert gap < tolerance, (
        f"{label}: means differ by {gap:.4f} "
        f"(> tolerance {tolerance:.4f}; {a.mean():.4f} vs {b.mean():.4f})"
    )


def assert_reliability_within_band(
    a,
    b,
    *,
    band: float = 0.02,
    z: float = 4.0,
    label: str = "reliability",
) -> None:
    """Tolerance-banded comparison of per-replica reliability samples.

    Thin wrapper over :func:`assert_means_close` that additionally checks
    both samples live in ``[0, 1]`` (catching normalisation bugs that a pure
    mean comparison would let through).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    for name, sample in (("first", a), ("second", b)):
        assert np.all((sample >= 0.0) & (sample <= 1.0)), (
            f"{label}: {name} sample leaves [0, 1] "
            f"(min={sample.min():.4f}, max={sample.max():.4f})"
        )
    assert_means_close(a, b, band=band, z=z, label=label)

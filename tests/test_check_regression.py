"""Unit tests for the CI benchmark-regression gate (benchmarks/check_regression.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
_SPEC = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def flat_record(speedup: float) -> dict:
    return {"benchmark": "engine_head_to_head", "n": 500, "speedup": speedup}


def nested_record(**speedups: float) -> dict:
    return {
        "benchmark": "protocol_head_to_head",
        "protocols": {name: {"speedup": value} for name, value in speedups.items()},
    }


class TestCollectSpeedups:
    def test_flat_record(self):
        assert check_regression.collect_speedups(flat_record(12.5)) == {"speedup": 12.5}

    def test_nested_record(self):
        speedups = check_regression.collect_speedups(nested_record(rdg=80.0, pbcast=40.0))
        assert speedups == {
            "protocols.rdg.speedup": 80.0,
            "protocols.pbcast.speedup": 40.0,
        }

    def test_non_numeric_speedup_ignored(self):
        assert check_regression.collect_speedups({"speedup": "fast"}) == {}


class TestCompareRecords:
    def test_synthetic_two_x_slowdown_fails(self):
        # The acceptance fixture: a ratio that halved must trip a 25% gate.
        problems = check_regression.compare_records(
            flat_record(10.0), flat_record(5.0), threshold=0.25
        )
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_small_wobble_passes(self):
        assert (
            check_regression.compare_records(
                flat_record(10.0), flat_record(8.0), threshold=0.25
            )
            == []
        )

    def test_improvement_passes(self):
        assert (
            check_regression.compare_records(
                flat_record(10.0), flat_record(20.0), threshold=0.25
            )
            == []
        )

    def test_nested_regression_names_the_protocol(self):
        problems = check_regression.compare_records(
            nested_record(rdg=80.0, pbcast=40.0),
            nested_record(rdg=30.0, pbcast=41.0),
            threshold=0.25,
        )
        assert len(problems) == 1
        assert "protocols.rdg.speedup" in problems[0]

    def test_missing_ratio_fails(self):
        problems = check_regression.compare_records(
            nested_record(rdg=80.0), nested_record(), threshold=0.25
        )
        assert len(problems) == 1
        assert "missing" in problems[0]


class TestMain:
    def write(self, directory: Path, name: str, record: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(record))

    def test_exits_nonzero_on_two_x_slowdown(self, tmp_path, capsys):
        self.write(tmp_path / "baselines", "BENCH_engine.json", flat_record(10.0))
        self.write(tmp_path / "current", "BENCH_engine.json", flat_record(5.0))
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--current-dir", str(tmp_path / "current"),
                "--records", "BENCH_engine.json",
            ]
        )
        assert code == 1
        assert "BENCHMARK REGRESSIONS" in capsys.readouterr().out

    def test_exits_zero_within_threshold(self, tmp_path, capsys):
        self.write(tmp_path / "baselines", "BENCH_engine.json", flat_record(10.0))
        self.write(tmp_path / "current", "BENCH_engine.json", flat_record(9.0))
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--current-dir", str(tmp_path / "current"),
                "--records", "BENCH_engine.json",
            ]
        )
        assert code == 0
        assert "within threshold" in capsys.readouterr().out

    def test_missing_current_record_fails(self, tmp_path, capsys):
        self.write(tmp_path / "baselines", "BENCH_engine.json", flat_record(10.0))
        (tmp_path / "current").mkdir()
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--current-dir", str(tmp_path / "current"),
                "--records", "BENCH_engine.json",
            ]
        )
        assert code == 1

    def test_no_baselines_at_all_fails(self, tmp_path):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "current").mkdir()
        code = check_regression.main(
            [
                "--baseline-dir", str(tmp_path / "baselines"),
                "--current-dir", str(tmp_path / "current"),
            ]
        )
        assert code == 1

    def test_threshold_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            check_regression.main(["--threshold", "1.5"])

    def test_custom_threshold_loosens_gate(self, tmp_path):
        self.write(tmp_path / "baselines", "BENCH_engine.json", flat_record(10.0))
        self.write(tmp_path / "current", "BENCH_engine.json", flat_record(5.5))
        argv = [
            "--baseline-dir", str(tmp_path / "baselines"),
            "--current-dir", str(tmp_path / "current"),
            "--records", "BENCH_engine.json",
        ]
        assert check_regression.main(argv) == 1
        assert check_regression.main(argv + ["--threshold", "0.5"]) == 0


class TestCommittedBaselines:
    """The baselines shipped in the repository are structurally sound."""

    BASELINE_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"

    def test_every_default_record_has_a_baseline(self):
        for name in check_regression.DEFAULT_RECORDS:
            assert (self.BASELINE_DIR / name).exists(), f"missing baseline {name}"

    def test_baselines_contain_speedups(self):
        for name in check_regression.DEFAULT_RECORDS:
            with open(self.BASELINE_DIR / name) as fh:
                record = json.load(fh)
            speedups = check_regression.collect_speedups(record)
            assert speedups, f"{name}: no speedup ratios"
            for key, value in speedups.items():
                if "churn_overhead" in key:
                    # Retained-throughput ratios (static time / churned time)
                    # ride the gate under the ``speedup`` key by design and
                    # legitimately sit below 1.0 — churned runs do extra work
                    # (see benchmarks/baselines/README.md).
                    assert 0.0 < value <= 1.0, (
                        f"{name}: {key} is not a retained-throughput ratio"
                    )
                else:
                    assert value > 1.0, (
                        f"{name}: {key} is not a speedup at all"
                    )

    def test_baselines_pass_against_themselves(self):
        problems = check_regression.check_directories(
            self.BASELINE_DIR, self.BASELINE_DIR, threshold=0.25
        )
        assert problems == []

"""Unit tests for RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, seed_sequence, spawn_generators, spawn_seeds


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(5).integers(0, 100, size=10)
        b = as_generator(5).integers(0, 100, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passed_through(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSeedSequence:
    def test_from_int(self):
        assert seed_sequence(3).entropy == 3

    def test_passthrough(self):
        ss = np.random.SeedSequence(9)
        assert seed_sequence(ss) is ss

    def test_generator_rejected(self):
        with pytest.raises(TypeError):
            seed_sequence(np.random.default_rng(1))


class TestSpawning:
    def test_spawn_generators_independent_streams(self):
        gens = spawn_generators(3, seed=11)
        draws = [g.integers(0, 10**9) for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_generators_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(3, seed=12)]
        b = [g.integers(0, 10**9) for g in spawn_generators(3, seed=12)]
        assert a == b

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(13)
        gens = spawn_generators(2, seed=parent)
        assert len(gens) == 2

    def test_spawn_seeds_plain_ints(self):
        seeds = spawn_seeds(4, seed=14)
        assert len(seeds) == 4
        assert all(isinstance(s, int) and s >= 0 for s in seeds)
        assert len(set(seeds)) == 4

    def test_spawn_seeds_from_generator(self):
        seeds = spawn_seeds(3, seed=np.random.default_rng(15))
        assert len(seeds) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(-1)
        with pytest.raises(ValueError):
            spawn_seeds(-1)

    def test_zero_count(self):
        assert spawn_generators(0) == []
        assert spawn_seeds(0) == []

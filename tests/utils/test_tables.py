"""Unit tests for table-formatting helpers."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_row, format_series, format_table


class TestFormatRow:
    def test_alignment_and_precision(self):
        row = format_row(["a", 1.23456, 7], [3, 8, 4], precision=3)
        assert row == "  a    1.235    7"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_row([1, 2], [4])

    def test_bool_rendering(self):
        assert "True" in format_row([True], [6])


class TestFormatTable:
    def test_structure(self):
        table = format_table(["x", "y"], [(1, 2.0), (3, 4.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}

    def test_wide_values_extend_columns(self):
        table = format_table(["name"], [["a-very-long-identifier"]])
        assert "a-very-long-identifier" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert len(table.splitlines()) == 2


class TestFormatSeries:
    def test_round_trip(self):
        text = format_series("reliability", [1.0, 2.0], [0.5, 0.9])
        assert "reliability" in text
        assert len(text.splitlines()) == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("y", [1.0], [0.5, 0.6])

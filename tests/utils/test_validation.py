"""Unit tests for validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_node_id,
    check_non_negative,
    check_positive,
    check_probability,
    check_real,
)


class TestCheckProbability:
    def test_accepts_bounds_by_default(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        assert check_probability("p", 0.5) == 0.5

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_probability("p", 0.0, allow_zero=False)
        with pytest.raises(ValueError):
            check_probability("p", 1.0, allow_one=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.01)
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_probability("my_param", 2.0)


class TestCheckReal:
    def test_accepts_int_and_float(self):
        assert check_real("x", 3) == 3.0
        assert check_real("x", 2.5) == 2.5

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            check_real("x", True)
        with pytest.raises(TypeError):
            check_real("x", "1.0")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_real("x", math.nan)
        with pytest.raises(ValueError):
            check_real("x", math.inf)


class TestCheckPositiveAndNonNegative:
    def test_positive(self):
        assert check_positive("x", 0.1) == 0.1
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)
        assert check_in_range("x", 1.5, 1.0, 2.0, inclusive=False) == 1.5


class TestCheckInteger:
    def test_bounds(self):
        assert check_integer("k", 3, minimum=0, maximum=5) == 3
        with pytest.raises(ValueError):
            check_integer("k", -1, minimum=0)
        with pytest.raises(ValueError):
            check_integer("k", 6, maximum=5)

    def test_type_errors(self):
        with pytest.raises(TypeError):
            check_integer("k", 2.0)
        with pytest.raises(TypeError):
            check_integer("k", True)

    def test_numpy_integers_accepted(self):
        import numpy as np

        assert check_integer("k", np.int64(4)) == 4


class TestCheckNodeId:
    def test_in_range(self):
        assert check_node_id("node", 0, 5) == 0
        assert check_node_id("node", 4, 5) == 4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_node_id("node", 5, 5)

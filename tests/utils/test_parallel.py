"""Unit tests for the parallel-map helper."""

from __future__ import annotations

import os


from repro.utils.parallel import default_processes, parallel_map


def square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(square, range(6), processes=1) == [0, 1, 4, 9, 16, 25]

    def test_small_batches_run_serially_even_with_workers(self):
        assert parallel_map(square, [2, 3], processes=8) == [4, 9]

    def test_parallel_path_matches_serial(self):
        items = list(range(12))
        serial = parallel_map(square, items, processes=1)
        parallel = parallel_map(square, items, processes=2, serial_threshold=0)
        assert serial == parallel

    def test_empty_input(self):
        assert parallel_map(square, [], processes=4) == []

    def test_default_processes_positive(self):
        assert default_processes() >= 1
        assert default_processes() <= (os.cpu_count() or 1)

"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import (
    BinomialFanout,
    EmpiricalFanout,
    FixedFanout,
    GeometricFanout,
    MixtureFanout,
    PoissonFanout,
    UniformFanout,
    ZipfFanout,
)

#: Deterministic seed used by any test that needs a single reproducible stream.
TEST_SEED = 20080149


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(TEST_SEED)


@pytest.fixture
def poisson4() -> PoissonFanout:
    """The paper's favourite configuration: Poisson fanout with mean 4."""
    return PoissonFanout(4.0)


def all_distributions() -> list:
    """One representative instance of every fanout distribution family."""
    return [
        PoissonFanout(3.0),
        FixedFanout(3),
        BinomialFanout(10, 0.3),
        GeometricFanout.from_mean(3.0),
        UniformFanout(1, 5),
        ZipfFanout(2.0, 12),
        EmpiricalFanout([0.1, 0.2, 0.3, 0.25, 0.15]),
        MixtureFanout([FixedFanout(1), PoissonFanout(5.0)], [0.4, 0.6]),
    ]


@pytest.fixture(params=all_distributions(), ids=lambda d: d.name)
def any_distribution(request):
    """Parametrised fixture iterating over every distribution family."""
    return request.param

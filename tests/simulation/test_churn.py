"""Unit tests for the dynamic-membership churn plane.

The churn schedules must encode presence correctly (round 0 is the initial
state, dissemination rounds are 1-based, a member is present during round
``t`` iff ``join_round <= t < leave_round``), the models must keep the
source in the group, and — the discipline every engine relies on — a
zero-rate model must consume **no randomness** and produce a trivial
schedule, so churn-aware runs at rate 0 stay bit-identical to static runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.churn import (
    NEVER,
    ChurnSchedule,
    ChurnScheduleBatch,
    DeterministicChurnModel,
    PoissonChurnModel,
    trivial_schedule_batch,
)


class TestChurnSchedule:
    def test_presence_window_semantics(self):
        schedule = ChurnSchedule(
            join_round=np.array([0, 3, 0], dtype=np.int64),
            leave_round=np.array([NEVER, NEVER, 2], dtype=np.int64),
        )
        assert schedule.n == 3
        # Member 1 joins at round 3: absent before, present from 3 on.
        np.testing.assert_array_equal(schedule.present_at(0), [True, False, True])
        np.testing.assert_array_equal(schedule.present_at(2), [True, False, False])
        np.testing.assert_array_equal(schedule.present_at(3), [True, True, False])
        # Member 2 leaves at round 2: present during round 1, gone at 2.
        np.testing.assert_array_equal(schedule.present_at(1), [True, False, True])

    def test_trivial_detection(self):
        static = ChurnSchedule(
            join_round=np.zeros(4, dtype=np.int64),
            leave_round=np.full(4, NEVER, dtype=np.int64),
        )
        assert static.is_trivial()
        churned = ChurnSchedule(
            join_round=np.zeros(4, dtype=np.int64),
            leave_round=np.array([NEVER, 5, NEVER, NEVER], dtype=np.int64),
        )
        assert not churned.is_trivial()


class TestChurnScheduleBatch:
    def test_shapes_and_accessors(self):
        batch = trivial_schedule_batch(7, 3)
        assert batch.repetitions == 3
        assert batch.n == 7
        assert batch.is_trivial()
        assert batch.present_at(0).shape == (3, 7)
        assert batch.present_at(10).all()

    def test_per_replica_presence_probe(self):
        join = np.zeros((2, 3), dtype=np.int64)
        leave = np.full((2, 3), NEVER, dtype=np.int64)
        leave[0, 1] = 2  # replica 0: member 1 gone from round 2
        leave[1, 2] = 5  # replica 1: member 2 gone from round 5
        batch = ChurnScheduleBatch(join_round=join, leave_round=leave)
        # Probe replica 0 at round 3 and replica 1 at round 4.
        present = batch.present_at_rounds(np.array([3, 4]))
        np.testing.assert_array_equal(present, [[True, False, True], [True, True, True]])
        present = batch.present_at_rounds(np.array([1, 5]))
        np.testing.assert_array_equal(present, [[True, True, True], [True, True, False]])

    def test_scalar_slice(self):
        join = np.zeros((2, 3), dtype=np.int64)
        join[1, 2] = 4
        batch = ChurnScheduleBatch(
            join_round=join, leave_round=np.full((2, 3), NEVER, dtype=np.int64)
        )
        schedule = batch.schedule(1)
        assert isinstance(schedule, ChurnSchedule)
        np.testing.assert_array_equal(schedule.join_round, [0, 0, 4])
        with pytest.raises(ValueError):
            batch.schedule(2)


class TestPoissonChurnModel:
    def test_zero_rate_draws_no_randomness(self):
        model = PoissonChurnModel()
        assert model.is_zero()
        rng = np.random.default_rng(5)
        state_before = rng.bit_generator.state
        schedule = model.draw_batch(50, 4, rng)
        assert schedule.is_trivial()
        assert rng.bit_generator.state == state_before

    def test_initially_absent_only_is_not_zero(self):
        # A pure join pool with no leavers still perturbs membership.
        model = PoissonChurnModel(initially_absent=0.5, join_rate=0.2)
        assert not model.is_zero()
        schedule = model.draw_batch(400, 2, np.random.default_rng(1))
        assert not schedule.is_trivial()
        absent_at_start = ~schedule.present_at(0)
        assert 0.3 < absent_at_start.mean() < 0.7

    def test_source_never_churns(self):
        model = PoissonChurnModel(leave_rate=0.5, join_rate=0.5, initially_absent=0.9)
        schedule = model.draw_batch(30, 8, np.random.default_rng(2), source=3)
        assert np.all(schedule.join_round[:, 3] == 0)
        assert np.all(schedule.leave_round[:, 3] == NEVER)

    def test_deterministic_for_seed(self):
        model = PoissonChurnModel(leave_rate=0.1, join_rate=0.2, initially_absent=0.3)
        a = model.draw_batch(100, 5, np.random.default_rng(7))
        b = model.draw_batch(100, 5, np.random.default_rng(7))
        np.testing.assert_array_equal(a.join_round, b.join_round)
        np.testing.assert_array_equal(a.leave_round, b.leave_round)

    def test_leave_rate_controls_attrition(self):
        gentle = PoissonChurnModel(leave_rate=0.02)
        harsh = PoissonChurnModel(leave_rate=0.3)
        rng = np.random.default_rng(9)
        present_gentle = gentle.draw_batch(2000, 4, rng).present_at(8).mean()
        present_harsh = harsh.draw_batch(2000, 4, rng).present_at(8).mean()
        assert present_harsh < present_gentle < 1.0

    def test_absent_members_without_join_rate_never_join(self):
        model = PoissonChurnModel(initially_absent=0.4)
        schedule = model.draw_batch(500, 2, np.random.default_rng(11))
        absent = schedule.join_round > 0
        assert absent.any()
        assert np.all(schedule.join_round[absent] == NEVER)

    def test_lifetimes_count_from_join_round(self):
        model = PoissonChurnModel(leave_rate=0.5, join_rate=0.5, initially_absent=1.0)
        schedule = model.draw_batch(300, 2, np.random.default_rng(13), source=0)
        joined = schedule.join_round > 0
        # Geometric lifetimes have support >= 1: nobody leaves before joining.
        assert np.all(schedule.leave_round[joined] > schedule.join_round[joined])

    def test_scalar_draw_is_one_replica(self):
        model = PoissonChurnModel(leave_rate=0.2)
        schedule = model.draw(40, np.random.default_rng(15))
        assert isinstance(schedule, ChurnSchedule)
        assert schedule.n == 40

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PoissonChurnModel(leave_rate=1.0)  # certain departure every round
        with pytest.raises(ValueError):
            PoissonChurnModel(join_rate=-0.1)
        with pytest.raises(ValueError):
            PoissonChurnModel(initially_absent=1.5)
        model = PoissonChurnModel(leave_rate=0.1)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.draw_batch(0, 2, rng)
        with pytest.raises(ValueError):
            model.draw_batch(10, 0, rng)
        with pytest.raises(ValueError):
            model.draw_batch(10, 2, rng, source=10)


class TestDeterministicChurnModel:
    def test_event_semantics(self):
        model = DeterministicChurnModel(joins=((3, 1),), leaves=((2, 2),))
        schedule = model.draw_batch(4, 2, np.random.default_rng(0))
        # Member 1 joins at round 3, member 2 leaves at round 2.
        np.testing.assert_array_equal(schedule.present_at(0)[0], [True, False, True, True])
        np.testing.assert_array_equal(schedule.present_at(1)[0], [True, False, True, True])
        np.testing.assert_array_equal(schedule.present_at(2)[0], [True, False, False, True])
        np.testing.assert_array_equal(schedule.present_at(3)[0], [True, True, False, True])
        # Every replica replays the same events.
        np.testing.assert_array_equal(schedule.join_round[0], schedule.join_round[1])

    def test_earliest_leave_wins(self):
        model = DeterministicChurnModel(leaves=((5, 1), (2, 1)))
        schedule = model.draw_batch(3, 1, np.random.default_rng(0))
        assert schedule.leave_round[0, 1] == 2

    def test_source_immune_and_out_of_range_ignored(self):
        model = DeterministicChurnModel(joins=((4, 0), (1, 99)), leaves=((2, 0),))
        schedule = model.draw_batch(5, 1, np.random.default_rng(0), source=0)
        assert schedule.join_round[0, 0] == 0
        assert schedule.leave_round[0, 0] == NEVER

    def test_draws_no_randomness(self):
        rng = np.random.default_rng(3)
        state_before = rng.bit_generator.state
        DeterministicChurnModel(leaves=((1, 2),)).draw_batch(10, 4, rng)
        assert rng.bit_generator.state == state_before

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            DeterministicChurnModel(joins=((-1, 2),))

"""Unit tests for the gossip simulators (fast and event-driven)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.core.poisson_case import poisson_reliability
from repro.simulation.failures import FailurePattern, CrashTiming
from repro.simulation.gossip import simulate_gossip_event_driven, simulate_gossip_once
from repro.simulation.membership import UniformPartialView
from repro.simulation.network import NetworkModel, latency_uniform


class TestFastSimulator:
    def test_source_always_delivered(self):
        e = simulate_gossip_once(50, FixedFanout(0), 1.0, seed=1)
        assert e.delivered[e.source]
        assert e.n_delivered() == 1
        assert e.rounds <= 1

    def test_delivered_subset_of_alive(self):
        e = simulate_gossip_once(500, PoissonFanout(3.0), 0.6, seed=2)
        assert not np.any(e.delivered & ~e.alive)

    def test_reliability_definition(self):
        e = simulate_gossip_once(400, PoissonFanout(4.0), 0.8, seed=3)
        assert e.reliability() == pytest.approx(
            (e.delivered & e.alive).sum() / e.alive.sum()
        )

    def test_large_fanout_reaches_everyone(self):
        e = simulate_gossip_once(300, FixedFanout(12), 1.0, seed=4)
        assert e.is_success(1.0)
        assert e.reliability() == 1.0

    def test_subcritical_dies_out(self):
        e = simulate_gossip_once(2000, PoissonFanout(0.5), 1.0, seed=5)
        assert e.reliability() < 0.05

    def test_matches_analysis_supercritical(self):
        values = [
            simulate_gossip_once(3000, PoissonFanout(4.0), 0.9, seed=seed).reliability()
            for seed in range(5)
        ]
        assert np.mean(values) == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.03)

    def test_explicit_failure_pattern_respected(self):
        n = 20
        alive = np.ones(n, dtype=bool)
        alive[5:] = False  # only members 0-4 are alive
        pattern = FailurePattern(alive=alive, timing=np.full(n, CrashTiming.BEFORE_RECEIVE, dtype=object))
        e = simulate_gossip_once(n, FixedFanout(19), 1.0, seed=6, failure_pattern=pattern)
        assert set(np.flatnonzero(e.delivered)) <= set(range(5))
        assert e.reliability() == 1.0  # all 5 alive members reached

    def test_duplicates_counted(self):
        e = simulate_gossip_once(50, FixedFanout(10), 1.0, seed=7)
        assert e.duplicates > 0
        assert e.messages_sent >= e.n_delivered() - 1

    def test_messages_bounded_by_fanout_times_forwarders(self):
        e = simulate_gossip_once(200, FixedFanout(3), 1.0, seed=8)
        assert e.messages_sent <= 3 * e.n_delivered()

    def test_partial_view_membership(self):
        view = UniformPartialView(300, 10, seed=9)
        e = simulate_gossip_once(300, PoissonFanout(4.0), 0.9, seed=10, membership=view)
        assert 0.0 <= e.reliability() <= 1.0

    def test_membership_size_mismatch_rejected(self):
        view = UniformPartialView(100, 5, seed=11)
        with pytest.raises(ValueError):
            simulate_gossip_once(200, PoissonFanout(3.0), 0.9, membership=view)

    def test_reproducibility(self):
        a = simulate_gossip_once(200, PoissonFanout(3.0), 0.8, seed=12)
        b = simulate_gossip_once(200, PoissonFanout(3.0), 0.8, seed=12)
        np.testing.assert_array_equal(a.delivered, b.delivered)
        assert a.messages_sent == b.messages_sent

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_gossip_once(0, PoissonFanout(2.0), 0.5)
        with pytest.raises(ValueError):
            simulate_gossip_once(10, PoissonFanout(2.0), 1.2)
        with pytest.raises(ValueError):
            simulate_gossip_once(10, PoissonFanout(2.0), 0.5, source=10)

    def test_missed_members_listing(self):
        e = simulate_gossip_once(500, PoissonFanout(2.0), 0.7, seed=13)
        missed = e.missed_members()
        assert np.all(e.alive[missed])
        assert not np.any(e.delivered[missed])
        assert missed.size + e.n_delivered() == e.n_alive()

    def test_metrics_record_consistency(self):
        e = simulate_gossip_once(300, PoissonFanout(3.0), 0.8, seed=14)
        m = e.metrics()
        assert m.n == 300
        assert m.n_alive == e.n_alive()
        assert m.reliability == pytest.approx(e.reliability())
        assert m.success == e.is_success(1.0)

    @given(
        n=st.integers(min_value=2, max_value=150),
        z=st.floats(min_value=0.1, max_value=8.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, n, z, q, seed):
        e = simulate_gossip_once(n, PoissonFanout(z), q, seed=seed)
        assert e.delivered[e.source]
        assert not np.any(e.delivered & ~e.alive)
        assert 0.0 <= e.reliability() <= 1.0
        assert e.duplicates >= 0
        assert e.messages_sent >= 0
        assert e.rounds >= 1


class TestEventDrivenSimulator:
    def test_agrees_with_fast_simulator_on_average(self):
        fast = [
            simulate_gossip_once(400, PoissonFanout(4.0), 0.9, seed=s).reliability()
            for s in range(8)
        ]
        event = [
            simulate_gossip_event_driven(400, PoissonFanout(4.0), 0.9, seed=s).reliability()
            for s in range(8)
        ]
        assert np.mean(fast) == pytest.approx(np.mean(event), abs=0.05)

    def test_lossy_network_reduces_reliability(self):
        reliable = simulate_gossip_event_driven(500, PoissonFanout(3.0), 1.0, seed=1)
        lossy = simulate_gossip_event_driven(
            500,
            PoissonFanout(3.0),
            1.0,
            seed=1,
            network=NetworkModel(loss_probability=0.6),
        )
        assert lossy.reliability() < reliable.reliability()

    def test_latency_model_does_not_change_reachability_statistics(self):
        a = [
            simulate_gossip_event_driven(
                300,
                PoissonFanout(4.0),
                0.9,
                seed=s,
                network=NetworkModel(latency=latency_uniform(0.1, 5.0)),
            ).reliability()
            for s in range(6)
        ]
        b = [
            simulate_gossip_event_driven(300, PoissonFanout(4.0), 0.9, seed=s).reliability()
            for s in range(6)
        ]
        assert np.mean(a) == pytest.approx(np.mean(b), abs=0.06)

    def test_source_delivered_and_counts(self):
        e = simulate_gossip_event_driven(100, PoissonFanout(2.0), 0.8, seed=3)
        assert e.delivered[e.source]
        assert not np.any(e.delivered & ~e.alive)
        assert e.messages_sent >= 0

    def test_max_events_caps_execution(self):
        e = simulate_gossip_event_driven(500, FixedFanout(5), 1.0, seed=4, max_events=10)
        # Only a handful of events processed: dissemination is partial.
        assert e.n_delivered() < 500

    def test_full_loss_means_only_source(self):
        e = simulate_gossip_event_driven(
            100, FixedFanout(5), 1.0, seed=5, network=NetworkModel(loss_probability=1.0)
        )
        assert e.n_delivered() == 1

"""Unit tests for the Monte-Carlo runner and sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import PoissonFanout
from repro.core.poisson_case import poisson_reliability
from repro.simulation.membership import UniformPartialView
from repro.simulation.runner import estimate_reliability, reliability_sweep


class TestEstimateReliability:
    def test_mean_matches_analysis(self):
        estimate = estimate_reliability(1500, PoissonFanout(4.0), 0.9, repetitions=10, seed=1)
        assert estimate.mean_reliability == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.03)

    def test_record_fields(self):
        estimate = estimate_reliability(300, PoissonFanout(3.0), 0.8, repetitions=6, seed=2)
        assert estimate.n == 300
        assert estimate.q == 0.8
        assert estimate.mean_fanout == pytest.approx(3.0)
        assert estimate.repetitions == 6
        assert estimate.samples.shape == (6,)
        assert estimate.mean_rounds > 0
        assert estimate.mean_messages > 0

    def test_reproducible_serial(self):
        a = estimate_reliability(200, PoissonFanout(3.0), 0.8, repetitions=5, seed=3)
        b = estimate_reliability(200, PoissonFanout(3.0), 0.8, repetitions=5, seed=3)
        np.testing.assert_allclose(a.samples, b.samples)

    def test_partial_view_supported_serially(self):
        view = UniformPartialView(300, 8, seed=4)
        estimate = estimate_reliability(
            300, PoissonFanout(4.0), 0.9, repetitions=4, seed=5, membership=view
        )
        assert 0.0 <= estimate.mean_reliability <= 1.0

    def test_parallel_path_gives_sensible_result(self):
        estimate = estimate_reliability(
            400,
            PoissonFanout(4.0),
            0.9,
            repetitions=6,
            seed=6,
            processes=2,
            conditional_on_spread=True,
        )
        assert estimate.repetitions <= 6
        assert estimate.mean_reliability == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.05)

    def test_conditional_on_spread_matches_analysis_near_threshold(self):
        # Near the threshold the unconditional average undershoots the
        # analytical giant-component size, while the conditional one matches.
        unconditional = estimate_reliability(
            2000, PoissonFanout(3.0), 0.5, repetitions=20, seed=77
        )
        conditional = estimate_reliability(
            2000, PoissonFanout(3.0), 0.5, repetitions=20, seed=77, conditional_on_spread=True
        )
        analytic = poisson_reliability(3.0, 0.5)
        assert conditional.mean_reliability == pytest.approx(analytic, abs=0.06)
        assert unconditional.mean_reliability < conditional.mean_reliability
        assert 0.0 < conditional.spread_rate <= 1.0
        assert conditional.conditional_on_spread

    def test_spread_rate_reported(self):
        estimate = estimate_reliability(500, PoissonFanout(4.0), 0.9, repetitions=10, seed=8)
        assert 0.0 <= estimate.spread_rate <= 1.0
        assert not estimate.conditional_on_spread

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            estimate_reliability(1, PoissonFanout(3.0), 0.5)
        with pytest.raises(ValueError):
            estimate_reliability(100, PoissonFanout(3.0), 0.5, repetitions=0)


class TestSeedPathDeterminism:
    """Regression: the two serial spellings of the same run must agree.

    ``reliability_sweep`` used to seed ``estimate_reliability`` with the live
    generator when ``processes=1`` but with a spawned child seed when
    ``processes=None`` — so the same sweep at the same seed produced
    different numbers depending on which way "serial" was spelled.  The seed
    path is now unified (always spawn; chunk layout a function of
    ``repetitions`` alone), making every ``processes`` spelling
    bit-identical.
    """

    def test_estimate_processes_none_equals_one(self):
        kwargs = dict(repetitions=20, seed=31)
        one = estimate_reliability(300, PoissonFanout(4.0), 0.9, processes=1, **kwargs)
        auto = estimate_reliability(300, PoissonFanout(4.0), 0.9, processes=None, **kwargs)
        np.testing.assert_array_equal(one.samples, auto.samples)
        assert one.mean_rounds == auto.mean_rounds
        assert one.mean_messages == auto.mean_messages

    def test_estimate_explicit_pool_matches_serial(self):
        kwargs = dict(repetitions=20, seed=32)
        one = estimate_reliability(300, PoissonFanout(4.0), 0.9, processes=1, **kwargs)
        pooled = estimate_reliability(300, PoissonFanout(4.0), 0.9, processes=3, **kwargs)
        np.testing.assert_array_equal(one.samples, pooled.samples)

    def test_scalar_engine_processes_none_equals_one(self):
        kwargs = dict(repetitions=6, seed=33, engine="scalar")
        one = estimate_reliability(200, PoissonFanout(3.0), 0.8, processes=1, **kwargs)
        auto = estimate_reliability(200, PoissonFanout(3.0), 0.8, processes=None, **kwargs)
        np.testing.assert_array_equal(one.samples, auto.samples)

    def test_sweep_processes_none_equals_one(self):
        kwargs = dict(fanouts=[3.0, 5.0], qs=[0.8, 1.0], repetitions=10, seed=34)
        one = reliability_sweep(250, processes=1, **kwargs)
        auto = reliability_sweep(250, processes=None, **kwargs)
        assert [(p.simulated, p.simulated_std, p.mean_fanout, p.q) for p in one.points] == [
            (p.simulated, p.simulated_std, p.mean_fanout, p.q) for p in auto.points
        ]


class TestReliabilitySweep:
    def test_grid_coverage(self):
        sweep = reliability_sweep(
            200, fanouts=[1.0, 3.0, 5.0], qs=[0.5, 1.0], repetitions=3, seed=7
        )
        assert len(sweep.points) == 6
        assert sweep.fanouts == (1.0, 3.0, 5.0)
        assert sweep.qs == (0.5, 1.0)

    def test_series_extraction_sorted(self):
        sweep = reliability_sweep(
            150, fanouts=[5.0, 1.0, 3.0], qs=[0.8], repetitions=2, seed=8
        )
        series = sweep.series_for_q(0.8)
        assert [p.mean_fanout for p in series] == [1.0, 3.0, 5.0]

    def test_analytical_column_matches_closed_form(self):
        sweep = reliability_sweep(100, fanouts=[2.0, 4.0], qs=[0.9], repetitions=2, seed=9)
        for point in sweep.points:
            assert point.analytical == pytest.approx(
                poisson_reliability(point.mean_fanout, point.q), abs=1e-9
            )

    def test_error_metrics(self):
        # Conditioning on spread matches the analytical giant-component size
        # and keeps the check robust to the occasional die-out replica.
        sweep = reliability_sweep(
            600, fanouts=[4.0], qs=[0.9], repetitions=8, seed=10,
            conditional_on_spread=True,
        )
        assert sweep.max_absolute_error() < 0.1
        assert sweep.mean_absolute_error() <= sweep.max_absolute_error()

    def test_to_rows_format(self):
        sweep = reliability_sweep(100, fanouts=[2.0], qs=[0.7], repetitions=2, seed=11)
        rows = sweep.to_rows()
        assert len(rows) == 1
        assert len(rows[0]) == 5

    def test_alternative_distribution_factory(self):
        from repro.core.distributions import GeometricFanout

        sweep = reliability_sweep(
            200,
            fanouts=[3.0],
            qs=[0.9],
            repetitions=3,
            seed=12,
            distribution_factory=GeometricFanout.from_mean,
        )
        point = sweep.points[0]
        assert point.analytical != pytest.approx(poisson_reliability(3.0, 0.9), abs=1e-3)

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            reliability_sweep(100, fanouts=[2.0], qs=[1.5], repetitions=2)

    def test_empty_grid(self):
        sweep = reliability_sweep(100, fanouts=[], qs=[], repetitions=2, seed=13)
        assert sweep.points == []
        assert sweep.max_absolute_error() == 0.0

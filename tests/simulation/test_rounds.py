"""Unit tests for repeated executions and success-count simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.simulation.rounds import repeated_executions, simulate_success_counts


class TestRepeatedExecutions:
    def test_count_and_independence(self):
        executions = repeated_executions(200, PoissonFanout(3.0), 0.8, 5, seed=1)
        assert len(executions) == 5
        # Failure patterns are redrawn each execution, so alive masks differ.
        masks = {tuple(e.alive.tolist()) for e in executions}
        assert len(masks) > 1

    def test_zero_executions(self):
        assert repeated_executions(100, PoissonFanout(2.0), 0.9, 0, seed=2) == []

    def test_reproducible(self):
        a = repeated_executions(100, PoissonFanout(2.0), 0.9, 3, seed=3)
        b = repeated_executions(100, PoissonFanout(2.0), 0.9, 3, seed=3)
        for x, y in zip(a, b, strict=True):
            np.testing.assert_array_equal(x.delivered, y.delivered)


class TestSuccessCounts:
    def test_shapes_and_ranges(self):
        result = simulate_success_counts(
            150, PoissonFanout(4.0), 0.9, executions=10, simulations=15, seed=4
        )
        assert result.counts.shape == (15,)
        assert result.counts.min() >= 0 and result.counts.max() <= 10
        assert result.executions == 10
        assert result.empirical_pmf.shape == (11,)

    def test_per_member_mode_matches_binomial_mean(self):
        result = simulate_success_counts(
            600, PoissonFanout(4.0), 0.9, executions=20, simulations=40, seed=5
        )
        expected_mean = 20 * result.analytical_reliability
        assert result.mean_count() == pytest.approx(expected_mean, abs=1.5)

    def test_all_members_mode_is_stricter(self):
        per_member = simulate_success_counts(
            400, PoissonFanout(4.0), 0.9, executions=10, simulations=20, seed=6, mode="per_member"
        )
        all_members = simulate_success_counts(
            400, PoissonFanout(4.0), 0.9, executions=10, simulations=20, seed=6, mode="all_members"
        )
        assert all_members.mean_count() <= per_member.mean_count() + 1e-9

    def test_all_members_with_threshold(self):
        strict = simulate_success_counts(
            300, PoissonFanout(4.0), 0.9, executions=8, simulations=15, seed=7,
            mode="all_members", success_threshold=1.0,
        )
        relaxed = simulate_success_counts(
            300, PoissonFanout(4.0), 0.9, executions=8, simulations=15, seed=7,
            mode="all_members", success_threshold=0.8,
        )
        assert relaxed.mean_count() >= strict.mean_count() - 1e-9

    def test_huge_fanout_always_succeeds(self):
        result = simulate_success_counts(
            80, FixedFanout(79), 1.0, executions=5, simulations=10, seed=8, mode="all_members"
        )
        assert np.all(result.counts == 5)

    def test_subcritical_rarely_succeeds(self):
        result = simulate_success_counts(
            500, PoissonFanout(0.5), 1.0, executions=10, simulations=10, seed=9
        )
        assert result.mean_count() < 2.0

    def test_observer_never_equals_nonzero_source(self):
        # With a subcritical fanout the gossip rarely leaves the source, so
        # an observer drawn equal to the source would register trivial
        # always-success simulations; the count must stay near zero for any
        # source placement (both engines).
        for engine in ("batch", "scalar"):
            result = simulate_success_counts(
                80, PoissonFanout(0.2), 1.0, executions=20, simulations=40,
                source=5, seed=21, engine=engine,
            )
            assert result.counts.max() < 15, engine

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            simulate_success_counts(100, PoissonFanout(3.0), 0.9, mode="bogus")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulate_success_counts(1, PoissonFanout(3.0), 0.9)
        with pytest.raises(ValueError):
            simulate_success_counts(100, PoissonFanout(3.0), 0.9, executions=0)
        with pytest.raises(ValueError):
            simulate_success_counts(100, PoissonFanout(3.0), 0.9, simulations=0)

    def test_reproducible(self):
        a = simulate_success_counts(200, PoissonFanout(3.0), 0.8, executions=5, simulations=10, seed=10)
        b = simulate_success_counts(200, PoissonFanout(3.0), 0.8, executions=5, simulations=10, seed=10)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_condition_on_spread_matches_binomial_reference(self):
        conditional = simulate_success_counts(
            600, PoissonFanout(4.0), 0.9, executions=20, simulations=40, seed=11,
            condition_on_spread=True,
        )
        unconditional = simulate_success_counts(
            600, PoissonFanout(4.0), 0.9, executions=20, simulations=40, seed=11,
        )
        # Conditioning on take-off makes the per-trial success probability
        # equal to the analytical reliability, so the empirical mean moves
        # towards (and at least as high as) the Binomial reference mean.
        reference_mean = 20 * conditional.analytical_reliability
        assert conditional.mean_count() == pytest.approx(reference_mean, abs=1.0)
        assert conditional.mean_count() >= unconditional.mean_count() - 1e-9
        assert conditional.total_variation_distance() <= unconditional.total_variation_distance() + 0.05

"""Unit tests for the network transport model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.network import (
    GilbertElliottNetworkModel,
    NetworkModel,
    latency_constant,
    latency_exponential,
    latency_uniform,
)


class TestLatencySamplers:
    def test_constant(self, rng):
        sampler = latency_constant(2.5)
        assert sampler(rng) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            latency_constant(-1.0)

    def test_uniform_range(self, rng):
        sampler = latency_uniform(1.0, 2.0)
        values = [sampler(rng) for _ in range(200)]
        assert all(1.0 <= v <= 2.0 for v in values)

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            latency_uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            latency_uniform(-1.0, 1.0)

    def test_exponential_mean(self, rng):
        sampler = latency_exponential(3.0)
        values = np.array([sampler(rng) for _ in range(5000)])
        assert values.mean() == pytest.approx(3.0, rel=0.1)
        assert np.all(values >= 0)

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            latency_exponential(0.0)


class TestNetworkModel:
    def test_default_delivers_everything(self, rng):
        net = NetworkModel()
        delivered = []
        for _ in range(20):
            net.transmit(rng, lambda latency: delivered.append(latency))
        assert len(delivered) == 20
        assert net.messages_sent == 20
        assert net.messages_dropped == 0

    def test_full_loss_drops_everything(self, rng):
        net = NetworkModel(loss_probability=1.0)
        delivered = []
        for _ in range(10):
            assert not net.transmit(rng, lambda latency: delivered.append(latency))
        assert delivered == []
        assert net.messages_dropped == 10

    def test_partial_loss_rate(self, rng):
        net = NetworkModel(loss_probability=0.3)
        outcomes = [net.transmit(rng, lambda latency: None) for _ in range(10_000)]
        assert np.mean(outcomes) == pytest.approx(0.7, abs=0.03)

    def test_reset_counters(self, rng):
        net = NetworkModel()
        net.transmit(rng, lambda latency: None)
        net.reset_counters()
        assert net.messages_sent == 0
        assert net.messages_dropped == 0

    def test_invalid_loss_probability(self):
        with pytest.raises(ValueError):
            NetworkModel(loss_probability=1.5)

    def test_latency_passed_to_deliver(self, rng):
        net = NetworkModel(latency=latency_constant(4.0))
        seen = []
        net.transmit(rng, seen.append)
        assert seen == [4.0]


class TestLatencyBookkeeping:
    def test_transmit_accumulates_total_latency(self, rng):
        net = NetworkModel(latency=latency_constant(2.0))
        for _ in range(5):
            net.transmit(rng, lambda latency: None)
        assert net.total_latency == pytest.approx(10.0)

    def test_dropped_messages_add_no_latency(self, rng):
        net = NetworkModel(latency=latency_constant(2.0), loss_probability=1.0)
        for _ in range(5):
            net.transmit(rng, lambda latency: None)
        assert net.total_latency == 0.0

    def test_reset_clears_counters_and_latency(self, rng):
        net = NetworkModel(latency=latency_constant(3.0), loss_probability=0.5)
        for _ in range(50):
            net.transmit(rng, lambda latency: None)
        assert net.messages_sent == 50
        assert net.total_latency > 0.0
        net.reset()
        assert net.messages_sent == 0
        assert net.messages_dropped == 0
        assert net.total_latency == 0.0

    def test_reset_counters_alias_clears_latency_too(self, rng):
        # Regression: the old reset_counters left total_latency behind.
        net = NetworkModel(latency=latency_constant(1.5))
        net.transmit(rng, lambda latency: None)
        net.reset_counters()
        assert net.total_latency == 0.0


class TestDrawLoss:
    def test_zero_loss_keeps_everything_without_randomness(self, rng):
        net = NetworkModel(loss_probability=0.0)
        state_before = rng.bit_generator.state
        keep = net.draw_loss(rng, 100)
        assert keep.all() and keep.shape == (100,)
        assert rng.bit_generator.state == state_before  # no stream consumption
        assert net.messages_sent == 100
        assert net.messages_dropped == 0

    def test_full_loss_drops_everything(self, rng):
        net = NetworkModel(loss_probability=1.0)
        keep = net.draw_loss(rng, 40)
        assert not keep.any()
        assert net.messages_dropped == 40

    def test_partial_loss_rate(self, rng):
        net = NetworkModel(loss_probability=0.3)
        keep = net.draw_loss(rng, 20_000)
        assert keep.mean() == pytest.approx(0.7, abs=0.02)
        assert net.messages_dropped == 20_000 - keep.sum()

    def test_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            NetworkModel().draw_loss(rng, -1)

    def test_empty_draw(self, rng):
        net = NetworkModel(loss_probability=0.5)
        keep = net.draw_loss(rng, 0)
        assert keep.shape == (0,)
        assert net.messages_sent == 0


class TestDrawLossBatch:
    def test_zero_loss_short_circuits(self, rng):
        net = NetworkModel(loss_probability=0.0)
        replicas = np.array([0, 0, 1, 2, 2, 2])
        state_before = rng.bit_generator.state
        keep, dropped = net.draw_loss_batch(rng, replicas, 3)
        assert keep.all()
        np.testing.assert_array_equal(dropped, np.zeros(3, dtype=np.int64))
        assert rng.bit_generator.state == state_before
        assert net.messages_sent == 6

    def test_drops_book_back_to_their_replicas(self, rng):
        net = NetworkModel(loss_probability=1.0)
        replicas = np.array([0, 0, 1, 2, 2, 2])
        keep, dropped = net.draw_loss_batch(rng, replicas, 4)
        assert not keep.any()
        np.testing.assert_array_equal(dropped, np.array([2, 1, 3, 0]))
        assert net.messages_dropped == 6

    def test_partial_loss_consistency(self, rng):
        net = NetworkModel(loss_probability=0.4)
        replicas = np.repeat(np.arange(5), 2000)
        keep, dropped = net.draw_loss_batch(rng, replicas, 5)
        assert dropped.sum() == (~keep).sum() == net.messages_dropped
        assert dropped.sum() / replicas.size == pytest.approx(0.4, abs=0.02)

    def test_empty_batch(self, rng):
        net = NetworkModel(loss_probability=0.5)
        keep, dropped = net.draw_loss_batch(rng, np.empty(0, dtype=np.int64), 3)
        assert keep.shape == (0,)
        np.testing.assert_array_equal(dropped, np.zeros(3, dtype=np.int64))


class TestGilbertElliott:
    """The two-state bursty channel: collapse, burstiness, calibration."""

    def make(self, **overrides):
        params = dict(
            loss_probability=0.05,
            bad_loss_probability=0.8,
            p_good_to_bad=0.1,
            p_bad_to_good=0.3,
        )
        params.update(overrides)
        return GilbertElliottNetworkModel(**params)

    def test_stationary_statistics(self):
        net = self.make()
        assert net.stationary_bad_fraction() == pytest.approx(0.25)
        assert net.mean_loss_probability() == pytest.approx(0.2375)
        frozen = self.make(p_good_to_bad=0.0, p_bad_to_good=0.0)
        assert frozen.stationary_bad_fraction() == 0.0
        assert frozen.mean_loss_probability() == frozen.loss_probability

    def test_equal_rates_collapse_to_iid_bit_for_bit(self):
        # When both states share one drop rate the state cannot matter, so
        # every draw must defer to the base class verbatim (same stream).
        ge = self.make(loss_probability=0.3, bad_loss_probability=0.3)
        iid = NetworkModel(loss_probability=0.3)
        rng_a = np.random.default_rng(101)
        rng_b = np.random.default_rng(101)
        for count in (7, 50, 0, 200):
            np.testing.assert_array_equal(
                ge.draw_loss(rng_a, count), iid.draw_loss(rng_b, count)
            )
        replicas = np.repeat(np.arange(4), 30)
        keep_a, dropped_a = ge.draw_loss_batch(rng_a, replicas, 4)
        keep_b, dropped_b = iid.draw_loss_batch(rng_b, replicas, 4)
        np.testing.assert_array_equal(keep_a, keep_b)
        np.testing.assert_array_equal(dropped_a, dropped_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_zero_rates_consume_no_randomness(self, rng):
        net = self.make(loss_probability=0.0, bad_loss_probability=0.0)
        state_before = rng.bit_generator.state
        keep = net.draw_loss(rng, 80)
        assert keep.all()
        keep, dropped = net.draw_loss_batch(rng, np.repeat(np.arange(3), 10), 3)
        assert keep.all() and dropped.sum() == 0
        assert rng.bit_generator.state == state_before
        assert net.messages_dropped == 0

    def test_scalar_drops_are_bursty(self, rng):
        # Sequential single-message draws: one chain step per call, so a
        # drop signals the bad state and the next draw must be far likelier
        # to drop than the marginal rate.
        net = self.make()
        drops = np.array(
            [not net.draw_loss(rng, 1)[0] for _ in range(8000)], dtype=bool
        )
        marginal = drops.mean()
        conditional = drops[1:][drops[:-1]].mean()
        assert marginal == pytest.approx(net.mean_loss_probability(), abs=0.03)
        assert conditional > marginal + 0.1

    def test_batch_block_fading_and_stationary_start(self, rng):
        # One draw_loss_batch call is one coherence interval per replica:
        # each replica's realised drop rate sits near one state's rate, and
        # the bad fraction across replicas matches the stationary start.
        net = self.make()
        replicas = np.repeat(np.arange(400), 500)
        keep, dropped = net.draw_loss_batch(rng, replicas, 400)
        rates = dropped / 500.0
        near_good = np.abs(rates - net.loss_probability) < 0.07
        near_bad = np.abs(rates - net.bad_loss_probability) < 0.07
        assert np.all(near_good | near_bad)
        assert near_bad.mean() == pytest.approx(net.stationary_bad_fraction(), abs=0.06)

    def test_batch_long_run_drop_rate_matches_stationary_mean(self, rng):
        net = self.make()
        replicas = np.repeat(np.arange(8), 25)
        total = 0
        for _ in range(2000):  # 2000 chain steps per replica
            _, dropped = net.draw_loss_batch(rng, replicas, 8)
            total += int(dropped.sum())
        realised = total / (2000 * replicas.size)
        assert realised == pytest.approx(net.mean_loss_probability(), abs=0.02)

    def test_reset_clears_chain_state(self):
        net = self.make()
        first = [net.draw_loss(np.random.default_rng(77), 20) for _ in range(5)]
        net.reset()
        assert net.messages_sent == 0
        second = [net.draw_loss(np.random.default_rng(77), 20) for _ in range(5)]
        for a, b in zip(first, second, strict=True):
            np.testing.assert_array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self.make(bad_loss_probability=1.5)
        with pytest.raises(ValueError):
            self.make(p_good_to_bad=-0.1)
        with pytest.raises(ValueError):
            self.make(p_bad_to_good=2.0)


class TestGilbertElliottIdleLegs:
    """Regression pins: the chain is block fading in *time*, so a leg with no
    traffic must still advance the Markov state (the old code returned before
    the transition, freezing bursts across idle legs)."""

    def make_period2(self):
        # Deterministic period-2 chain: the state flips every leg, and the
        # extreme drop rates (0 in good, 1 in bad) make each leg's outcome a
        # pure function of the state, whatever the RNG does.
        return GilbertElliottNetworkModel(
            loss_probability=0.0,
            bad_loss_probability=1.0,
            p_good_to_bad=1.0,
            p_bad_to_good=1.0,
        )

    def test_scalar_empty_leg_advances_the_chain(self):
        # An idle leg between two one-message legs flips the state twice, so
        # legs 1 and 3 must agree; if the idle leg froze the chain, leg 3
        # would observe the opposite state.
        net = self.make_period2()
        rng = np.random.default_rng(20080149)
        leg1 = net.draw_loss(rng, 1)[0]
        assert net.draw_loss(rng, 0).size == 0
        leg3 = net.draw_loss(rng, 1)[0]
        assert leg3 == leg1
        # Control: without the idle leg, consecutive legs alternate.
        contiguous = self.make_period2()
        rng = np.random.default_rng(20080149)
        first = contiguous.draw_loss(rng, 1)[0]
        second = contiguous.draw_loss(rng, 1)[0]
        assert second != first

    def test_batch_empty_leg_advances_the_chain(self):
        net = self.make_period2()
        rng = np.random.default_rng(20080149)
        replicas = np.arange(5, dtype=np.int64)
        leg1, _ = net.draw_loss_batch(rng, replicas, 5)
        empty, empty_dropped = net.draw_loss_batch(rng, np.empty(0, dtype=np.int64), 5)
        assert empty.size == 0 and empty_dropped.sum() == 0
        leg3, _ = net.draw_loss_batch(rng, replicas, 5)
        np.testing.assert_array_equal(leg3, leg1)
        contiguous = self.make_period2()
        rng = np.random.default_rng(20080149)
        first, _ = contiguous.draw_loss_batch(rng, replicas, 5)
        second, _ = contiguous.draw_loss_batch(rng, replicas, 5)
        np.testing.assert_array_equal(second, ~first)

    def test_burst_statistics_with_interleaved_empty_legs(self, rng):
        # With random transitions, one idle leg between observations means
        # exactly TWO chain steps between consecutive non-empty legs.  The
        # conditional drop-after-drop rate must match the two-step closed
        # form: a frozen chain (zero steps) or a single step would both land
        # well outside the tolerance.
        net = GilbertElliottNetworkModel(
            loss_probability=0.05,
            bad_loss_probability=0.8,
            p_good_to_bad=0.1,
            p_bad_to_good=0.3,
        )
        drops = np.empty(6000, dtype=bool)
        for i in range(drops.size):
            drops[i] = not net.draw_loss(rng, 1)[0]
            net.draw_loss(rng, 0)  # idle leg: one extra chain step
        assert drops.mean() == pytest.approx(net.mean_loss_probability(), abs=0.03)
        p_bad_given_drop = (
            net.bad_loss_probability * net.stationary_bad_fraction()
        ) / net.mean_loss_probability()
        two_step_bb = 0.7 * 0.7 + 0.3 * 0.1
        two_step_gb = 0.1 * 0.7 + 0.9 * 0.1
        p_bad_next = p_bad_given_drop * two_step_bb + (1 - p_bad_given_drop) * two_step_gb
        expected = (
            p_bad_next * net.bad_loss_probability
            + (1 - p_bad_next) * net.loss_probability
        )
        conditional = drops[1:][drops[:-1]].mean()
        assert conditional == pytest.approx(expected, abs=0.045)


class TestGilbertElliottBatchResize:
    """Regression pin: silently re-dimensioning the per-replica chain mid-run
    used to discard all burst state; now it is an explicit error."""

    def make(self):
        return GilbertElliottNetworkModel(
            loss_probability=0.05,
            bad_loss_probability=0.8,
            p_good_to_bad=0.1,
            p_bad_to_good=0.3,
        )

    def test_width_change_raises(self, rng):
        net = self.make()
        net.draw_loss_batch(rng, np.repeat(np.arange(4), 5), 4)
        with pytest.raises(ValueError, match="reset"):
            net.draw_loss_batch(rng, np.repeat(np.arange(8), 5), 8)

    def test_reset_allows_new_width(self, rng):
        net = self.make()
        net.draw_loss_batch(rng, np.repeat(np.arange(4), 5), 4)
        net.reset()
        keep, dropped = net.draw_loss_batch(rng, np.repeat(np.arange(8), 5), 8)
        assert keep.size == 40
        assert dropped.size == 8

"""Unit tests for the network transport model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.network import (
    NetworkModel,
    latency_constant,
    latency_exponential,
    latency_uniform,
)


class TestLatencySamplers:
    def test_constant(self, rng):
        sampler = latency_constant(2.5)
        assert sampler(rng) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            latency_constant(-1.0)

    def test_uniform_range(self, rng):
        sampler = latency_uniform(1.0, 2.0)
        values = [sampler(rng) for _ in range(200)]
        assert all(1.0 <= v <= 2.0 for v in values)

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            latency_uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            latency_uniform(-1.0, 1.0)

    def test_exponential_mean(self, rng):
        sampler = latency_exponential(3.0)
        values = np.array([sampler(rng) for _ in range(5000)])
        assert values.mean() == pytest.approx(3.0, rel=0.1)
        assert np.all(values >= 0)

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            latency_exponential(0.0)


class TestNetworkModel:
    def test_default_delivers_everything(self, rng):
        net = NetworkModel()
        delivered = []
        for _ in range(20):
            net.transmit(rng, lambda latency: delivered.append(latency))
        assert len(delivered) == 20
        assert net.messages_sent == 20
        assert net.messages_dropped == 0

    def test_full_loss_drops_everything(self, rng):
        net = NetworkModel(loss_probability=1.0)
        delivered = []
        for _ in range(10):
            assert not net.transmit(rng, lambda latency: delivered.append(latency))
        assert delivered == []
        assert net.messages_dropped == 10

    def test_partial_loss_rate(self, rng):
        net = NetworkModel(loss_probability=0.3)
        outcomes = [net.transmit(rng, lambda latency: None) for _ in range(10_000)]
        assert np.mean(outcomes) == pytest.approx(0.7, abs=0.03)

    def test_reset_counters(self, rng):
        net = NetworkModel()
        net.transmit(rng, lambda latency: None)
        net.reset_counters()
        assert net.messages_sent == 0
        assert net.messages_dropped == 0

    def test_invalid_loss_probability(self):
        with pytest.raises(ValueError):
            NetworkModel(loss_probability=1.5)

    def test_latency_passed_to_deliver(self, rng):
        net = NetworkModel(latency=latency_constant(4.0))
        seen = []
        net.transmit(rng, seen.append)
        assert seen == [4.0]

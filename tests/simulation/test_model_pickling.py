"""Regression tests for the RL003 runtime contract: models pickle and stay frozen.

These pin the *runtime* half of the invariant repro-lint RL003 checks
statically — latency/churn/failure models cross ``utils.parallel`` pools
inside pickled work tuples and are shared across experiment cells, so every
concrete model must round-trip through pickle unchanged and reject mutation.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.simulation.churn import DeterministicChurnModel, PoissonChurnModel
from repro.simulation.failures import TargetedCrashModel, UniformCrashModel
from repro.simulation.network import ConstantLatency, ExponentialLatency, UniformLatency

MODELS = [
    UniformCrashModel(0.9),
    UniformCrashModel(0.75, after_receive_fraction=0.25),
    TargetedCrashModel((3, 1, 2)),
    PoissonChurnModel(leave_rate=0.05, join_rate=0.1, initially_absent=0.2),
    DeterministicChurnModel(joins=((1, 4),), leaves=((2, 7), (3, 8))),
    ConstantLatency(2.0),
    UniformLatency(0.5, 1.5),
    ExponentialLatency(1.0),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
def test_model_pickle_round_trip(model: object) -> None:
    clone = pickle.loads(pickle.dumps(model))
    assert clone == model
    assert type(clone) is type(model)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
def test_model_is_frozen(model: object) -> None:
    field_name = dataclasses.fields(model)[0].name  # type: ignore[arg-type]
    with pytest.raises(dataclasses.FrozenInstanceError):
        setattr(model, field_name, 0.123)


def test_failure_model_draw_identical_after_pickle() -> None:
    model = UniformCrashModel(0.8)
    clone = pickle.loads(pickle.dumps(model))
    original = model.draw(50, np.random.default_rng(7), source=0)
    replayed = clone.draw(50, np.random.default_rng(7), source=0)
    np.testing.assert_array_equal(original.alive, replayed.alive)


def test_targeted_model_draw_identical_after_pickle() -> None:
    model = TargetedCrashModel((5, 9, 9, 2))
    clone = pickle.loads(pickle.dumps(model))
    original = model.draw(20, np.random.default_rng(3), source=0)
    replayed = clone.draw(20, np.random.default_rng(3), source=0)
    np.testing.assert_array_equal(original.alive, replayed.alive)


def test_churn_model_schedule_identical_after_pickle() -> None:
    model = PoissonChurnModel(leave_rate=0.1, join_rate=0.2, initially_absent=0.3)
    clone = pickle.loads(pickle.dumps(model))
    original = model.draw_batch(30, 8, np.random.default_rng(11), source=0)
    replayed = clone.draw_batch(30, 8, np.random.default_rng(11), source=0)
    np.testing.assert_array_equal(original.join_round, replayed.join_round)
    np.testing.assert_array_equal(original.leave_round, replayed.leave_round)


def test_latency_sampler_draw_identical_after_pickle() -> None:
    sampler = ExponentialLatency(1.5)
    clone = pickle.loads(pickle.dumps(sampler))
    original = sampler.draw(np.random.default_rng(13), 100)
    replayed = clone.draw(np.random.default_rng(13), 100)
    np.testing.assert_array_equal(original, replayed)

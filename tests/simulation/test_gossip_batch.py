"""Equivalence and edge-case tests for the batched gossip engine.

The batched engine (:func:`simulate_gossip_batch`) must agree with the scalar
reference (:func:`simulate_gossip_once`) **in distribution**: the two consume
randomness in different orders, so the tests compare statistics over matched
replica counts through the shared harness in ``tests/helpers/statistical.py``
(tolerance-banded mean reliability, KS and chi-square checks on the
delivered-count samples) rather than per-seed outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import FixedFanout, PoissonFanout
from repro.core.poisson_case import poisson_reliability
from repro.simulation.gossip import (
    BatchGossipResult,
    simulate_gossip_batch,
    simulate_gossip_once,
)
from repro.simulation.membership import FullView, UniformPartialView
from tests.helpers.statistical import (
    assert_reliability_within_band,
    assert_same_counts_chisquare,
    assert_same_distribution,
)


def _scalar_samples(n, dist, q, repetitions, seed, **kwargs):
    rng = np.random.default_rng(seed)
    return [
        simulate_gossip_once(n, dist, q, seed=rng, **kwargs)
        for _ in range(repetitions)
    ]


class TestBatchBasics:
    def test_shapes_and_invariants(self):
        result = simulate_gossip_batch(400, PoissonFanout(4.0), 0.8, repetitions=12, seed=1)
        assert isinstance(result, BatchGossipResult)
        assert result.alive.shape == result.delivered.shape == (12, 400)
        assert result.rounds.shape == (12,)
        assert result.repetitions == 12
        # Delivered members are always alive; the source is always delivered.
        assert not np.any(result.delivered & ~result.alive)
        assert np.all(result.delivered[:, result.source])
        assert np.all(result.alive[:, result.source])
        assert np.all((result.reliability() >= 0.0) & (result.reliability() <= 1.0))
        assert np.all(result.duplicates >= 0)
        assert np.all(result.messages_sent >= result.duplicates)

    def test_deterministic_for_seed(self):
        a = simulate_gossip_batch(300, PoissonFanout(3.0), 0.7, repetitions=6, seed=42)
        b = simulate_gossip_batch(300, PoissonFanout(3.0), 0.7, repetitions=6, seed=42)
        np.testing.assert_array_equal(a.delivered, b.delivered)
        np.testing.assert_array_equal(a.rounds, b.rounds)
        np.testing.assert_array_equal(a.messages_sent, b.messages_sent)
        np.testing.assert_array_equal(a.duplicates, b.duplicates)

    def test_replicas_are_independent(self):
        result = simulate_gossip_batch(200, PoissonFanout(3.0), 0.6, repetitions=8, seed=2)
        masks = {tuple(row.tolist()) for row in result.alive}
        assert len(masks) > 1

    def test_execution_and_metrics_round_trip(self):
        result = simulate_gossip_batch(150, PoissonFanout(4.0), 0.9, repetitions=5, seed=3)
        metrics = result.metrics()
        assert len(metrics) == 5
        for r in range(5):
            execution = result.execution(r)
            assert execution.metrics() == metrics[r]

    def test_alive_override(self):
        n, reps = 30, 4
        alive = np.zeros((reps, n), dtype=bool)
        alive[:, :5] = True  # only members 0-4 are alive
        result = simulate_gossip_batch(
            n, FixedFanout(n - 1), 1.0, repetitions=reps, seed=4, alive=alive
        )
        assert np.all(result.n_alive() == 5)
        assert np.all(result.reliability() == 1.0)
        assert not np.any(result.delivered[:, 5:])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_gossip_batch(100, PoissonFanout(3.0), 0.5, repetitions=0)
        with pytest.raises(ValueError):
            simulate_gossip_batch(
                100, PoissonFanout(3.0), 0.5, repetitions=3, alive=np.ones((2, 100), bool)
            )
        with pytest.raises(ValueError):
            simulate_gossip_batch(
                100, PoissonFanout(3.0), 0.5, repetitions=3, membership=FullView(50)
            )
        with pytest.raises(ValueError):
            simulate_gossip_batch(100, PoissonFanout(3.0), 1.5, repetitions=3)


class TestEdgeCases:
    def test_single_member_group(self):
        result = simulate_gossip_batch(1, PoissonFanout(3.0), 1.0, repetitions=6, seed=5)
        assert np.all(result.n_delivered() == 1)
        assert np.all(result.reliability() == 1.0)
        assert np.all(result.messages_sent == 0)
        assert np.all(result.rounds == 1)

    def test_zero_fanout_dies_immediately(self):
        result = simulate_gossip_batch(50, FixedFanout(0), 1.0, repetitions=5, seed=6)
        assert np.all(result.n_delivered() == 1)
        assert np.all(result.rounds == 1)
        assert np.all(result.messages_sent == 0)
        scalar = simulate_gossip_once(50, FixedFanout(0), 1.0, seed=6)
        assert scalar.rounds == result.rounds[0]

    def test_q_zero_only_source_alive(self):
        result = simulate_gossip_batch(40, FixedFanout(5), 0.0, repetitions=5, seed=7)
        assert np.all(result.n_alive() == 1)
        assert np.all(result.reliability() == 1.0)

    def test_huge_fanout_reaches_everyone_in_two_hops(self):
        result = simulate_gossip_batch(120, FixedFanout(119), 1.0, repetitions=4, seed=8)
        assert np.all(result.reliability() == 1.0)
        assert np.all(result.rounds == 2)

    def test_partial_view_supported(self):
        view = UniformPartialView(250, 8, seed=9)
        result = simulate_gossip_batch(
            250, PoissonFanout(4.0), 0.9, repetitions=8, seed=10, membership=view
        )
        assert np.all((result.reliability() >= 0.0) & (result.reliability() <= 1.0))

    def test_partial_view_degrades_reliability(self):
        # A tiny view cannot beat the full-view dissemination on average.
        full = simulate_gossip_batch(300, PoissonFanout(5.0), 1.0, repetitions=30, seed=11)
        tiny = simulate_gossip_batch(
            300,
            PoissonFanout(5.0),
            1.0,
            repetitions=30,
            seed=11,
            membership=UniformPartialView(300, 2, seed=12),
        )
        assert tiny.reliability().mean() <= full.reliability().mean() + 0.05


class TestDistributionEquivalence:
    """The batched and scalar engines agree in distribution."""

    N = 600
    REPS = 150

    @pytest.fixture(scope="class")
    def matched_runs(self):
        dist = PoissonFanout(4.0)
        scalar = _scalar_samples(self.N, dist, 0.9, self.REPS, seed=100)
        batch = simulate_gossip_batch(
            self.N, dist, 0.9, repetitions=self.REPS, seed=200
        )
        return scalar, batch

    def test_mean_reliability_within_confidence_bounds(self, matched_runs):
        scalar, batch = matched_runs
        assert_reliability_within_band(
            [e.reliability() for e in scalar], batch.reliability()
        )

    def test_conditional_mean_matches_analysis(self, matched_runs):
        _, batch = matched_runs
        spread = batch.spread_occurred()
        conditional = batch.reliability()[spread].mean()
        assert conditional == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.01)

    def test_delivered_counts_distribution(self, matched_runs):
        scalar, batch = matched_runs
        s = [e.n_delivered() for e in scalar]
        assert_same_distribution(s, batch.n_delivered(), label="delivered counts")
        assert_same_counts_chisquare(s, batch.n_delivered(), label="delivered counts")

    def test_messages_and_duplicates_distribution(self, matched_runs):
        scalar, batch = matched_runs
        assert_same_distribution(
            [e.messages_sent for e in scalar], batch.messages_sent, label="messages"
        )
        assert_same_distribution(
            [e.duplicates for e in scalar], batch.duplicates, label="duplicates"
        )

    def test_rounds_distribution_close(self, matched_runs):
        scalar, batch = matched_runs
        s = np.array([e.rounds for e in scalar], dtype=float)
        assert abs(s.mean() - batch.rounds.mean()) < 1.0

    def test_fixed_fanout_equivalence(self):
        dist = FixedFanout(4)
        scalar = _scalar_samples(500, dist, 0.8, 100, seed=300)
        batch = simulate_gossip_batch(500, dist, 0.8, repetitions=100, seed=400)
        assert_same_distribution(
            [e.n_delivered() for e in scalar], batch.n_delivered(), label="delivered counts"
        )

    def test_partial_view_equivalence(self):
        view = UniformPartialView(300, 10, seed=13)
        dist = PoissonFanout(4.0)
        scalar = _scalar_samples(300, dist, 0.9, 80, seed=500, membership=view)
        batch = simulate_gossip_batch(
            300, dist, 0.9, repetitions=80, seed=600, membership=view
        )
        assert_same_distribution(
            [e.n_delivered() for e in scalar], batch.n_delivered(), label="delivered counts"
        )

    def test_subcritical_equivalence(self):
        # Below the percolation threshold both engines die out fast.
        dist = PoissonFanout(0.5)
        scalar = _scalar_samples(800, dist, 1.0, 60, seed=700)
        batch = simulate_gossip_batch(800, dist, 1.0, repetitions=60, seed=800)
        s = np.array([e.n_delivered() for e in scalar])
        assert s.mean() < 20 and batch.n_delivered().mean() < 20
        assert_same_distribution(s, batch.n_delivered(), label="delivered counts")

"""Unit tests for failure models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.failures import (
    CrashTiming,
    TargetedCrashModel,
    UniformCrashModel,
)


class TestUniformCrashModel:
    def test_source_never_fails(self, rng):
        model = UniformCrashModel(q=0.0)
        pattern = model.draw(50, rng, source=3)
        assert pattern.alive[3]
        assert pattern.n_alive() == 1

    def test_alive_fraction_close_to_q(self, rng):
        model = UniformCrashModel(q=0.7)
        pattern = model.draw(20_000, rng)
        assert pattern.n_alive() / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_q_one_all_alive(self, rng):
        pattern = UniformCrashModel(q=1.0).draw(100, rng)
        assert pattern.n_alive() == 100
        assert pattern.failed_members().size == 0

    def test_timing_assigned_to_every_member(self, rng):
        pattern = UniformCrashModel(q=0.5, after_receive_fraction=1.0).draw(30, rng)
        assert all(t is CrashTiming.AFTER_RECEIVE for t in pattern.timing)

    def test_timing_fraction_zero(self, rng):
        pattern = UniformCrashModel(q=0.5, after_receive_fraction=0.0).draw(30, rng)
        assert all(t is CrashTiming.BEFORE_RECEIVE for t in pattern.timing)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformCrashModel(q=-0.1)
        with pytest.raises(ValueError):
            UniformCrashModel(q=0.5, after_receive_fraction=2.0)

    def test_invalid_group_and_source(self, rng):
        model = UniformCrashModel(q=0.5)
        with pytest.raises(ValueError):
            model.draw(0, rng)
        with pytest.raises(ValueError):
            model.draw(10, rng, source=10)

    def test_failed_members_listing(self, rng):
        pattern = UniformCrashModel(q=0.3).draw(200, rng)
        failed = pattern.failed_members()
        assert np.all(~pattern.alive[failed])
        assert failed.size + pattern.n_alive() == 200


class TestTargetedCrashModel:
    def test_exact_members_fail(self, rng):
        model = TargetedCrashModel(failed=(2, 5, 7))
        pattern = model.draw(10, rng)
        assert set(pattern.failed_members().tolist()) == {2, 5, 7}

    def test_source_protected(self, rng):
        model = TargetedCrashModel(failed=(0, 1))
        pattern = model.draw(10, rng, source=0)
        assert pattern.alive[0]
        assert not pattern.alive[1]

    def test_out_of_range_ignored(self, rng):
        model = TargetedCrashModel(failed=(50,))
        pattern = model.draw(10, rng)
        assert pattern.n_alive() == 10

    def test_empty_failure_set(self, rng):
        pattern = TargetedCrashModel(failed=()).draw(5, rng)
        assert pattern.n_alive() == 5

"""Unit tests for failure models."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

import repro.simulation.failures as failures_module
from repro.simulation.failures import (
    CrashTiming,
    FailureModel,
    FailurePattern,
    FailurePatternBatch,
    TargetedCrashModel,
    UniformCrashModel,
)


class TestUniformCrashModel:
    def test_source_never_fails(self, rng):
        model = UniformCrashModel(q=0.0)
        pattern = model.draw(50, rng, source=3)
        assert pattern.alive[3]
        assert pattern.n_alive() == 1

    def test_alive_fraction_close_to_q(self, rng):
        model = UniformCrashModel(q=0.7)
        pattern = model.draw(20_000, rng)
        assert pattern.n_alive() / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_q_one_all_alive(self, rng):
        pattern = UniformCrashModel(q=1.0).draw(100, rng)
        assert pattern.n_alive() == 100
        assert pattern.failed_members().size == 0

    def test_timing_assigned_to_every_member(self, rng):
        pattern = UniformCrashModel(q=0.5, after_receive_fraction=1.0).draw(30, rng)
        assert all(t is CrashTiming.AFTER_RECEIVE for t in pattern.timing)

    def test_timing_fraction_zero(self, rng):
        pattern = UniformCrashModel(q=0.5, after_receive_fraction=0.0).draw(30, rng)
        assert all(t is CrashTiming.BEFORE_RECEIVE for t in pattern.timing)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformCrashModel(q=-0.1)
        with pytest.raises(ValueError):
            UniformCrashModel(q=0.5, after_receive_fraction=2.0)

    def test_invalid_group_and_source(self, rng):
        model = UniformCrashModel(q=0.5)
        with pytest.raises(ValueError):
            model.draw(0, rng)
        with pytest.raises(ValueError):
            model.draw(10, rng, source=10)

    def test_failed_members_listing(self, rng):
        pattern = UniformCrashModel(q=0.3).draw(200, rng)
        failed = pattern.failed_members()
        assert np.all(~pattern.alive[failed])
        assert failed.size + pattern.n_alive() == 200


class TestDrawBatch:
    def test_uniform_batch_shapes_and_source(self, rng):
        batch = UniformCrashModel(q=0.8).draw_batch(100, 12, rng, source=4)
        assert isinstance(batch, FailurePatternBatch)
        assert batch.alive.shape == batch.after_receive.shape == (12, 100)
        assert batch.repetitions == 12 and batch.n == 100
        assert np.all(batch.alive[:, 4])
        # Timing is only recorded for failed members.
        assert not np.any(batch.after_receive & batch.alive)

    def test_uniform_batch_alive_fraction(self, rng):
        batch = UniformCrashModel(q=0.7).draw_batch(2000, 40, rng)
        assert batch.n_alive().mean() / 2000 == pytest.approx(0.7, abs=0.02)

    def test_uniform_batch_timing_fractions(self, rng):
        all_after = UniformCrashModel(q=0.5, after_receive_fraction=1.0).draw_batch(
            200, 6, rng
        )
        assert np.all(all_after.after_receive[~all_after.alive])
        none_after = UniformCrashModel(q=0.5, after_receive_fraction=0.0).draw_batch(
            200, 6, rng
        )
        assert not np.any(none_after.after_receive)

    def test_targeted_batch_is_deterministic_rows(self, rng):
        batch = TargetedCrashModel(failed=(1, 3)).draw_batch(10, 5, rng, source=0)
        expected = np.ones(10, dtype=bool)
        expected[[1, 3]] = False
        np.testing.assert_array_equal(batch.alive, np.tile(expected, (5, 1)))
        assert not np.any(batch.after_receive)

    def test_batch_pattern_round_trip(self, rng):
        batch = UniformCrashModel(q=0.5, after_receive_fraction=1.0).draw_batch(
            50, 4, rng
        )
        pattern = batch.pattern(2)
        assert isinstance(pattern, FailurePattern)
        np.testing.assert_array_equal(pattern.alive, batch.alive[2])
        failed = ~batch.alive[2]
        assert all(t is CrashTiming.AFTER_RECEIVE for t in pattern.timing[failed])
        with pytest.raises(ValueError):
            batch.pattern(4)

    def test_default_draw_batch_stacks_scalar_draws(self, rng):
        # A custom model without an override goes through the generic path.
        class EvenMembersFail(FailureModel):
            def draw(self, n, rng, *, source=0):
                alive = np.ones(n, dtype=bool)
                alive[::2] = False
                alive[source] = True
                timing = np.full(n, CrashTiming.AFTER_RECEIVE, dtype=object)
                return FailurePattern(alive=alive, timing=timing)

        batch = EvenMembersFail().draw_batch(10, 3, rng, source=0)
        assert batch.alive.shape == (3, 10)
        assert np.all(batch.alive[:, 0])
        assert not np.any(batch.alive[:, 2::2])
        # Timing plane restricted to failed members, as in the overrides.
        assert not np.any(batch.after_receive & batch.alive)
        assert np.all(batch.after_receive[~batch.alive])

    def test_invalid_batch_arguments(self, rng):
        with pytest.raises(ValueError):
            UniformCrashModel(q=0.5).draw_batch(0, 3, rng)
        with pytest.raises(ValueError):
            UniformCrashModel(q=0.5).draw_batch(10, 0, rng)
        with pytest.raises(ValueError):
            TargetedCrashModel(failed=()).draw_batch(10, 3, rng, source=10)


class TestValidationAndAllocationRegression:
    """Model parameters are validated once, and draws stay allocation-lean."""

    def test_uniform_validates_only_at_construction(self, rng, monkeypatch):
        calls = []
        original = failures_module.check_probability

        def spy(name, value, **kwargs):
            calls.append(name)
            return original(name, value, **kwargs)

        monkeypatch.setattr(failures_module, "check_probability", spy)
        model = UniformCrashModel(q=0.6, after_receive_fraction=0.3)
        construction_calls = len(calls)
        assert construction_calls == 2  # q and after_receive_fraction
        for _ in range(10):
            model.draw(50, rng)
        model.draw_batch(50, 8, rng)
        assert len(calls) == construction_calls, "draw re-validated model parameters"

    def test_draw_still_guards_call_arguments(self, rng):
        model = UniformCrashModel(q=0.5)
        with pytest.raises(ValueError):
            model.draw(0, rng)
        with pytest.raises(ValueError):
            model.draw(10, rng, source=10)
        with pytest.raises(ValueError):
            model.draw(10, rng, source=-1)

    def test_targeted_caches_failed_indices(self):
        model = TargetedCrashModel(failed=(7, 3, 3, 9))
        cached = model._failed_array
        assert isinstance(cached, np.ndarray)
        np.testing.assert_array_equal(cached, [3, 7, 9])
        rng = np.random.default_rng(0)
        model.draw(20, rng)
        assert model._failed_array is cached  # no per-draw rebuild

    def test_targeted_draw_is_allocation_lean(self):
        # A large failed set must not be re-materialised per draw: beyond
        # the returned masks (~n bool + n object cells) the draw allocates
        # O(len(failed)) ndarray scratch, never a Python list of boxed ints.
        n, n_failed = 50_000, 20_000
        model = TargetedCrashModel(failed=tuple(range(n_failed)))
        rng = np.random.default_rng(1)
        model.draw(n, rng)  # warm-up (numpy internals, caches)
        tracemalloc.start()
        pattern = model.draw(n, rng)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert pattern.n_alive() == n - n_failed + 1  # source survives
        # Returned arrays: alive (n bytes) + timing (8n bytes on 64-bit);
        # scratch: one n_failed-sized mask/index pair.  A boxed-int loop
        # would allocate ~28 bytes per failed member on top and blow this.
        budget = 9 * n + 16 * n_failed + 200_000
        assert peak < budget, f"draw allocated {peak} bytes (budget {budget})"

    def test_targeted_batch_reuses_single_row(self):
        model = TargetedCrashModel(failed=(1, 2, 3))
        rng = np.random.default_rng(2)
        batch = model.draw_batch(100, 6, rng)
        # All rows identical (deterministic model) and boolean-typed.
        assert batch.alive.dtype == np.bool_
        assert np.all(batch.alive == batch.alive[0])


class TestTargetedCrashModel:
    def test_exact_members_fail(self, rng):
        model = TargetedCrashModel(failed=(2, 5, 7))
        pattern = model.draw(10, rng)
        assert set(pattern.failed_members().tolist()) == {2, 5, 7}

    def test_source_protected(self, rng):
        model = TargetedCrashModel(failed=(0, 1))
        pattern = model.draw(10, rng, source=0)
        assert pattern.alive[0]
        assert not pattern.alive[1]

    def test_out_of_range_ignored(self, rng):
        model = TargetedCrashModel(failed=(50,))
        pattern = model.draw(10, rng)
        assert pattern.n_alive() == 10

    def test_empty_failure_set(self, rng):
        pattern = TargetedCrashModel(failed=()).draw(5, rng)
        assert pattern.n_alive() == 5


class TestTargetedBatchSweep:
    """Batched targeted draws must equal stacked scalar draws exactly.

    ``TargetedCrashModel`` is deterministic (no randomness in either path),
    so the batch rows and the scalar pattern must agree bit-for-bit across a
    sweep of engineered failed-block sizes — the contract the
    ``recovery_resilience`` targeted-crash rows rely on.
    """

    @pytest.mark.parametrize("n", [40, 200])
    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.3, 0.5])
    def test_batch_rows_match_scalar_draw(self, rng, n, fraction):
        k = int(round(fraction * n))
        model = TargetedCrashModel(failed=tuple(range(1, 1 + k)))
        scalar = model.draw(n, rng, source=0)
        batch = model.draw_batch(n, 7, rng, source=0)
        assert scalar.n_alive() == n - k
        for replica in range(7):
            np.testing.assert_array_equal(batch.alive[replica], scalar.alive)
        assert np.all(batch.alive[:, 0])
        assert not np.any(batch.after_receive)

    def test_batch_consumes_no_randomness(self, rng):
        model = TargetedCrashModel(failed=(1, 2, 3))
        state_before = rng.bit_generator.state
        model.draw_batch(50, 5, rng, source=0)
        assert rng.bit_generator.state == state_before

"""Tests of the discretised latency plane and its event-driven calibration."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from scipy import stats

from repro.core.distributions import FixedFanout
from repro.protocols import FixedFanoutGossip
from repro.simulation.gossip import simulate_gossip_batch, simulate_gossip_event_driven
from repro.simulation.latency import (
    DeliveryTimePlane,
    delivery_percentiles,
    percentile_label,
)
from repro.simulation.network import (
    GilbertElliottNetworkModel,
    NetworkModel,
    latency_constant,
    latency_exponential,
    latency_uniform,
)


class TestPercentileHelpers:
    def test_percentile_label(self):
        assert percentile_label(50) == "p50"
        assert percentile_label(99.0) == "p99"
        assert percentile_label(99.9) == "p999"

    def test_delivery_percentiles_ignore_undelivered(self):
        times = np.array([[0.0, 1.0, np.inf], [2.0, 3.0, 4.0]])
        out = delivery_percentiles(times)
        assert set(out) == {"p50", "p99", "p999"}
        assert out["p50"] == pytest.approx(np.percentile([0.0, 1.0, 2.0, 3.0, 4.0], 50))
        assert out["p50"] <= out["p99"] <= out["p999"]

    def test_delivery_percentiles_all_undelivered_is_nan(self):
        out = delivery_percentiles(np.full((2, 3), np.inf))
        assert all(np.isnan(v) for v in out.values())


class TestDeliveryTimePlane:
    def make_plane(self, sampler=None, repetitions=2, n=4, round_period=1.0):
        network = NetworkModel(latency=sampler or latency_constant(1.0))
        plane = DeliveryTimePlane(network, repetitions, n, round_period=round_period)
        return plane, network

    def test_round_period_must_be_positive(self):
        with pytest.raises(ValueError):
            self.make_plane(round_period=0.0)

    def test_constant_fast_path_passes_through_in_order(self, rng):
        plane, _ = self.make_plane()
        assert plane.constant_fast_path
        cells = np.array([1, 5, 6], dtype=np.int64)
        due, times, aux = plane.schedule(3, cells, rng)
        np.testing.assert_array_equal(due, cells)
        np.testing.assert_allclose(times, 4.0)  # send at 3*T, arrive one unit later
        assert aux is None
        assert not plane.has_pending()

    def test_constant_latency_consumes_no_randomness(self, rng):
        plane, _ = self.make_plane()
        state = rng.bit_generator.state
        plane.schedule(0, np.array([0, 1], dtype=np.int64), rng)
        assert rng.bit_generator.state == state

    def test_slow_messages_bucket_and_mature(self, rng):
        plane, _ = self.make_plane(latency_constant(2.5))
        assert not plane.constant_fast_path
        cells = np.array([1, 5], dtype=np.int64)  # one per replica (n=4)
        due, _, _ = plane.schedule(0, cells, rng)
        assert due.size == 0
        np.testing.assert_array_equal(plane.pending_mask(), [True, True])
        due, _, _ = plane.schedule(1, np.empty(0, dtype=np.int64), rng)
        assert due.size == 0  # d = ceil(2.5) = 3: processable at round 2
        due, times, _ = plane.schedule(2, np.empty(0, dtype=np.int64), rng)
        np.testing.assert_array_equal(np.sort(due), [1, 5])
        np.testing.assert_allclose(times, 2.5)
        assert not plane.has_pending()

    def test_channels_are_independent_and_carry_aux(self, rng):
        plane, _ = self.make_plane(latency_constant(1.5))  # d=2: due next round
        plane.schedule(0, np.array([0], dtype=np.int64), rng, channel="payload")
        plane.schedule(
            0,
            np.array([5], dtype=np.int64),
            rng,
            channel="digest",
            aux=np.array([3], dtype=np.int64),
        )
        due, _, _ = plane.schedule(1, np.empty(0, dtype=np.int64), rng, channel="payload")
        np.testing.assert_array_equal(due, [0])
        due, _, aux = plane.schedule(
            1,
            np.empty(0, dtype=np.int64),
            rng,
            channel="digest",
            aux=np.empty(0, dtype=np.int64),
        )
        np.testing.assert_array_equal(due, [5])
        np.testing.assert_array_equal(aux, [3])
        assert not plane.has_pending()

    def test_drain_pops_everything_left(self, rng):
        plane, _ = self.make_plane(latency_constant(3.5))
        plane.schedule(0, np.array([1], dtype=np.int64), rng)
        plane.schedule(1, np.array([6], dtype=np.int64), rng)
        assert plane.has_pending()
        cells, times, aux = plane.drain()
        np.testing.assert_array_equal(cells, [1, 6])  # bucket-round order
        np.testing.assert_allclose(times, [3.5, 4.5])
        assert aux is None
        assert not plane.has_pending()
        cells, times, _ = plane.drain()
        assert cells.size == 0 and times.size == 0

    def test_record_min_merges_and_finalize_scrubs(self):
        plane, _ = self.make_plane()
        plane.record(np.array([1, 1, 5]), np.array([3.0, 2.0, 4.0]))
        delivered = np.zeros((2, 4), dtype=bool)
        delivered[0, 1] = True  # flat cell 1; flat cell 5 NOT delivered
        out = plane.finalize(delivered)
        assert out[0, 1] == 2.0
        assert np.isinf(out[1, 1])  # recorded but scrubbed: not delivered
        assert np.isinf(out[0, 0])

    def test_draw_books_total_latency(self, rng):
        plane, network = self.make_plane(latency_constant(0.25))
        delays = plane.draw(rng, 8)
        np.testing.assert_allclose(delays, 0.25)
        assert network.total_latency == pytest.approx(2.0)


class TestTotalLatencyAccounting:
    """Scalar and batched engines book the same latency law (satellite fix:
    ``total_latency`` used to accumulate only through scalar ``transmit``)."""

    def test_constant_latency_law_agrees_scalar_vs_batch(self):
        c = 0.7
        protocol = FixedFanoutGossip(4)
        scalar_net = NetworkModel(latency=latency_constant(c), loss_probability=0.1)
        protocol.run(300, 0.9, seed=11, network=scalar_net)
        kept = scalar_net.messages_sent - scalar_net.messages_dropped
        assert kept > 0
        assert scalar_net.total_latency == pytest.approx(c * kept)

        batch_net = NetworkModel(latency=latency_constant(c), loss_probability=0.1)
        protocol.run_batch(300, 0.9, repetitions=10, seed=11, network=batch_net)
        kept = batch_net.messages_sent - batch_net.messages_dropped
        assert kept > 0
        assert batch_net.total_latency == pytest.approx(c * kept)

    def test_batch_accumulates_total_latency_at_random_latency(self):
        net = NetworkModel(latency=latency_exponential(2.0))
        FixedFanoutGossip(4).run_batch(200, 1.0, repetitions=5, seed=3, network=net)
        kept = net.messages_sent - net.messages_dropped
        # One draw per arrived message (mean 2.0), within wide MC slack.
        assert net.total_latency == pytest.approx(2.0 * kept, rel=0.25)


class TestSamplerPicklability:
    """Satellite fix: latency samplers are frozen dataclasses, not closures."""

    @pytest.mark.parametrize(
        "sampler",
        [latency_constant(1.5), latency_uniform(0.5, 1.5), latency_exponential(2.0)],
        ids=["constant", "uniform", "exponential"],
    )
    def test_sampler_pickles_and_draws_identically(self, sampler):
        clone = pickle.loads(pickle.dumps(sampler))
        a = sampler.draw(np.random.default_rng(3), 64)
        b = clone.draw(np.random.default_rng(3), 64)
        np.testing.assert_array_equal(a, b)
        assert clone(np.random.default_rng(5)) == sampler(np.random.default_rng(5))

    def test_network_models_pickle_whole(self):
        for net in (
            NetworkModel(latency=latency_exponential(2.0), loss_probability=0.3),
            GilbertElliottNetworkModel(
                loss_probability=0.05,
                bad_loss_probability=0.8,
                p_good_to_bad=0.1,
                p_bad_to_good=0.3,
                latency=latency_uniform(0.5, 1.5),
            ),
        ):
            clone = pickle.loads(pickle.dumps(net))
            keep_a = net.draw_loss(np.random.default_rng(9), 50)
            keep_b = clone.draw_loss(np.random.default_rng(9), 50)
            np.testing.assert_array_equal(keep_a, keep_b)
            assert clone.total_latency == pytest.approx(net.total_latency)


class TestBatchedVsEventDrivenDeliveryTimes:
    """KS pins: with a small round period the discretised plane converges to
    the continuous-time event-driven reference's delivery-time law."""

    @pytest.mark.parametrize(
        "make_latency",
        [lambda: latency_exponential(2.0), lambda: latency_uniform(0.5, 1.5)],
        ids=["exponential", "uniform"],
    )
    @pytest.mark.parametrize(
        "n,batch_reps,event_runs", [(50, 40, 40), (500, 8, 6)], ids=["n50", "n500"]
    )
    def test_delivery_time_distribution_matches(self, n, batch_reps, event_runs, make_latency):
        batch = simulate_gossip_batch(
            n,
            FixedFanout(4),
            1.0,
            repetitions=batch_reps,
            seed=2024,
            network=NetworkModel(latency=make_latency()),
            round_period=0.02,
        )
        assert batch.delivered.mean() > 0.9
        batched_times = batch.delivery_times[np.isfinite(batch.delivery_times)]

        seed_rng = np.random.default_rng(2025)
        event_times = []
        for _ in range(event_runs):
            execution = simulate_gossip_event_driven(
                n,
                FixedFanout(4),
                1.0,
                seed=seed_rng,
                network=NetworkModel(latency=make_latency()),
            )
            event_times.append(execution.delivery_times[np.isfinite(execution.delivery_times)])
        event_times = np.concatenate(event_times)

        # Subsample so the fixed-seed KS statistic sits well below its
        # rejection region (~0.071 at alpha 1e-3 for 1500 vs 1500).
        sub = np.random.default_rng(7)
        batched_times = sub.choice(batched_times, size=min(batched_times.size, 1500), replace=False)
        event_times = sub.choice(event_times, size=min(event_times.size, 1500), replace=False)
        result = stats.ks_2samp(batched_times, event_times)
        assert result.statistic < 0.085, (
            f"batched vs event-driven delivery times diverge: "
            f"KS={result.statistic:.4f}, p={result.pvalue:.5f}, "
            f"medians {np.median(batched_times):.3f} vs {np.median(event_times):.3f}"
        )

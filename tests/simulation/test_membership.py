"""Unit tests for membership views and distinct-target sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.membership import (
    FullView,
    MembershipView,
    UniformPartialView,
    sample_distinct,
    sample_distinct_rows,
)


class TestSampleDistinct:
    def test_returns_distinct_values(self, rng):
        sample = sample_distinct(rng, 100, 10)
        assert len(np.unique(sample)) == 10

    def test_excludes_given_member(self, rng):
        for _ in range(50):
            sample = sample_distinct(rng, 10, 5, exclude=3)
            assert 3 not in sample

    def test_truncates_to_population(self, rng):
        sample = sample_distinct(rng, 5, 10, exclude=0)
        assert len(sample) == 4
        assert set(sample.tolist()) == {1, 2, 3, 4}

    def test_zero_k(self, rng):
        assert sample_distinct(rng, 10, 0).shape == (0,)

    def test_empty_population(self, rng):
        assert sample_distinct(rng, 0, 3).shape == (0,)

    def test_population_of_one_with_exclusion(self, rng):
        assert sample_distinct(rng, 1, 1, exclude=0).shape == (0,)

    def test_uniformity(self, rng):
        # Each of the 4 non-excluded members should be picked ~ equally often.
        counts = np.zeros(5)
        for _ in range(4000):
            picks = sample_distinct(rng, 5, 1, exclude=0)
            counts[picks[0]] += 1
        assert counts[0] == 0
        assert np.all(np.abs(counts[1:] / 4000 - 0.25) < 0.04)

    @given(
        population=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=0, max_value=70),
        exclude=st.integers(min_value=0, max_value=59),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_distinct_in_range_excluding(self, population, k, exclude, seed):
        rng = np.random.default_rng(seed)
        exclude = exclude % population
        sample = sample_distinct(rng, population, k, exclude=exclude)
        assert len(sample) == min(k, population - 1)
        assert len(np.unique(sample)) == len(sample)
        if sample.size:
            assert sample.min() >= 0 and sample.max() < population
            assert exclude not in sample


class TestFullView:
    def test_view_excludes_self(self):
        view = FullView(5)
        assert set(view.view_of(2).tolist()) == {0, 1, 3, 4}
        assert view.view_size(2) == 4

    def test_sample_targets_distinct_and_exclude_self(self, rng):
        view = FullView(20)
        targets = view.sample_targets(4, 6, rng)
        assert len(targets) == 6
        assert len(np.unique(targets)) == 6
        assert 4 not in targets

    def test_sample_more_than_available(self, rng):
        view = FullView(4)
        targets = view.sample_targets(0, 10, rng)
        assert set(targets.tolist()) == {1, 2, 3}

    def test_invalid_member(self, rng):
        view = FullView(3)
        with pytest.raises(ValueError):
            view.view_of(3)
        with pytest.raises(ValueError):
            view.sample_targets(-1, 1, rng)

    def test_reset_is_noop(self):
        view = FullView(5)
        before = view.view_of(0).copy()
        view.reset(seed=1)
        np.testing.assert_array_equal(before, view.view_of(0))


class TestSampleDistinctNumpyPath:
    def test_large_k_uses_permutation_and_stays_correct(self, rng):
        # k a large fraction of the population exercises the numpy path.
        for k in (40, 99, 100):
            sample = sample_distinct(rng, 100, k, exclude=17)
            assert len(sample) == min(k, 99)
            assert len(np.unique(sample)) == len(sample)
            assert 17 not in sample

    def test_large_k_uniformity(self, rng):
        # Drawing 3 of 4 non-excluded values: each value appears w.p. 3/4.
        counts = np.zeros(5)
        for _ in range(4000):
            np.add.at(counts, sample_distinct(rng, 5, 3, exclude=0), 1)
        assert counts[0] == 0
        assert np.all(np.abs(counts[1:] / 4000 - 0.75) < 0.04)


class TestSampleDistinctRows:
    def test_rows_distinct_and_in_range(self, rng):
        ks = rng.integers(0, 12, size=200)
        matrix, valid = sample_distinct_rows(rng, 10, ks)
        for i in range(200):
            row = matrix[i][valid[i]]
            assert len(row) == min(ks[i], 10)
            assert len(np.unique(row)) == len(row)
            if row.size:
                assert row.min() >= 0 and row.max() < 10

    def test_key_fallback_rows_uniform(self, rng):
        # k = population - 1 forces the random-key path; each value should
        # be excluded with equal probability 1/population.
        matrix, valid = sample_distinct_rows(rng, 8, np.full(4000, 7))
        counts = np.bincount(matrix[valid], minlength=8)
        assert np.all(np.abs(counts / (4000 * 7) - 1 / 8) < 0.02)

    def test_empty_inputs(self, rng):
        matrix, valid = sample_distinct_rows(rng, 10, np.zeros(5, dtype=np.int64))
        assert matrix.shape == (5, 0) and valid.shape == (5, 0)
        matrix, valid = sample_distinct_rows(rng, 0, np.array([3, 2]))
        assert matrix.shape[1] == 0


class TestSampleTargetsBatch:
    def test_full_view_batch_contract(self, rng):
        view = FullView(50)
        members = rng.integers(0, 50, size=120)
        fanouts = rng.integers(0, 60, size=120)  # some exceed the view size
        targets, senders = view.sample_targets_batch(members, fanouts, rng)
        assert targets.shape == senders.shape
        for j in range(120):
            mine = targets[senders == j]
            assert len(mine) == min(int(fanouts[j]), 49)
            assert len(np.unique(mine)) == len(mine)
            assert members[j] not in mine

    def test_full_view_batch_uniform(self, rng):
        view = FullView(5)
        targets, _ = view.sample_targets_batch(
            np.zeros(20000, dtype=np.int64), np.ones(20000, dtype=np.int64), rng
        )
        counts = np.bincount(targets, minlength=5)
        assert counts[0] == 0
        assert np.all(np.abs(counts[1:] / 20000 - 0.25) < 0.02)

    def test_partial_view_batch_stays_within_views(self, rng):
        view = UniformPartialView(60, 6, seed=1)
        members = rng.integers(0, 60, size=150)
        fanouts = rng.integers(0, 10, size=150)
        targets, senders = view.sample_targets_batch(members, fanouts, rng)
        for j in range(150):
            mine = targets[senders == j]
            assert len(mine) == min(int(fanouts[j]), 6)
            assert len(np.unique(mine)) == len(mine)
            assert set(mine.tolist()) <= set(view.view_of(members[j]).tolist())

    def test_generic_fallback_matches_contract(self, rng):
        # Exercise the MembershipView base implementation directly.
        view = UniformPartialView(40, 5, seed=2)
        members = rng.integers(0, 40, size=30)
        fanouts = rng.integers(0, 8, size=30)
        targets, senders = MembershipView.sample_targets_batch(view, members, fanouts, rng)
        assert targets.shape == senders.shape
        for j in range(30):
            mine = targets[senders == j]
            assert len(mine) == min(int(fanouts[j]), 5)
            assert set(mine.tolist()) <= set(view.view_of(members[j]).tolist())

    def test_mismatched_shapes_rejected(self, rng):
        view = FullView(10)
        with pytest.raises(ValueError):
            view.sample_targets_batch(np.arange(3), np.arange(4), rng)

    def test_single_member_group(self, rng):
        view = FullView(1)
        targets, senders = view.sample_targets_batch(
            np.zeros(4, dtype=np.int64), np.full(4, 3, dtype=np.int64), rng
        )
        assert targets.size == 0 and senders.size == 0


class TestTimeVaryingMembership:
    """The views' churn contract: presence masks and absent-target dropping."""

    def test_alive_mask_defaults_to_everyone(self):
        view = FullView(6)
        mask = view.alive_mask()
        assert mask.shape == (6,) and mask.all()
        batch = view.alive_mask_batch(3)
        assert batch.shape == (3, 6) and batch.all()

    def test_apply_events_updates_masks(self):
        view = FullView(8)
        view.apply_events(1, leaves=[2, 5])
        np.testing.assert_array_equal(np.flatnonzero(~view.alive_mask()), [2, 5])
        view.apply_events(2, joins=[5])
        np.testing.assert_array_equal(np.flatnonzero(~view.alive_mask()), [2])
        batch = view.alive_mask_batch(4)
        assert batch.shape == (4, 8)
        assert not batch[:, 2].any() and batch[:, 5].all()

    def test_full_rejoin_restores_static_path(self, rng):
        # When everyone is back the mask deallocates and sampling is
        # bit-identical to a never-churned view at the same seed.
        view = UniformPartialView(40, 6, seed=5)
        view.apply_events(1, leaves=[3, 7])
        view.apply_events(2, joins=[3, 7])
        static = UniformPartialView(40, 6, seed=5)
        members = np.arange(40, dtype=np.int64)
        fanouts = np.full(40, 3, dtype=np.int64)
        a = view.sample_targets_batch(members, fanouts, np.random.default_rng(9))
        b = static.sample_targets_batch(members, fanouts, np.random.default_rng(9))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_invalid_event_ids_rejected(self):
        view = FullView(5)
        with pytest.raises(ValueError):
            view.apply_events(1, leaves=[5])
        with pytest.raises(ValueError):
            view.apply_events(1, joins=[-1])
        with pytest.raises(ValueError):
            view.apply_events(-1, leaves=[0])

    @pytest.mark.parametrize(
        "make_view",
        [lambda: FullView(50), lambda: UniformPartialView(50, 8, seed=4)],
        ids=["full", "partial"],
    )
    def test_scalar_sampling_never_returns_absent_targets(self, make_view, rng):
        view = make_view()
        absent = [4, 9, 17, 30]
        view.apply_events(1, leaves=absent)
        for member in (0, 12, 44):
            for _ in range(30):
                targets = view.sample_targets(member, 6, rng)
                assert member not in targets
                assert not set(targets.tolist()) & set(absent)

    @pytest.mark.parametrize(
        "make_view",
        [lambda: FullView(50), lambda: UniformPartialView(50, 8, seed=4)],
        ids=["full", "partial"],
    )
    def test_batch_sampling_never_returns_absent_or_self(self, make_view, rng):
        view = make_view()
        absent = [4, 9, 17, 30]
        view.apply_events(1, leaves=absent)
        members = rng.integers(0, 50, size=200)
        fanouts = rng.integers(0, 10, size=200)
        targets, senders = view.sample_targets_batch(members, fanouts, rng)
        assert targets.shape == senders.shape
        assert not set(targets.tolist()) & set(absent)
        assert np.all(targets != members[senders])

    def test_generic_fallback_drops_absent_targets(self, rng):
        view = UniformPartialView(30, 5, seed=6)
        view.apply_events(1, leaves=[1, 2, 3])
        members = rng.integers(0, 30, size=40)
        fanouts = rng.integers(0, 6, size=40)
        targets, _ = MembershipView.sample_targets_batch(view, members, fanouts, rng)
        assert not set(targets.tolist()) & {1, 2, 3}


class TestUniformPartialView:
    def test_view_size_respected(self):
        view = UniformPartialView(50, 8, seed=1)
        for member in range(50):
            assert view.view_size(member) == 8
            assert member not in view.view_of(member)

    def test_view_size_capped_at_group(self):
        view = UniformPartialView(5, 100, seed=2)
        assert view.view_size(0) == 4

    def test_sampling_stays_within_view(self, rng):
        view = UniformPartialView(40, 6, seed=3)
        for member in (0, 7, 39):
            targets = view.sample_targets(member, 4, rng)
            assert set(targets.tolist()) <= set(view.view_of(member).tolist())
            assert len(np.unique(targets)) == len(targets)

    def test_sample_more_than_view(self, rng):
        view = UniformPartialView(30, 3, seed=4)
        targets = view.sample_targets(5, 10, rng)
        assert len(targets) == 3

    def test_reset_changes_views(self):
        view = UniformPartialView(100, 5, seed=5)
        before = view.view_of(0).copy()
        view.reset(seed=6)
        after = view.view_of(0)
        assert not np.array_equal(before, after)

    def test_deterministic_for_seed(self):
        a = UniformPartialView(60, 7, seed=8)
        b = UniformPartialView(60, 7, seed=8)
        for member in range(0, 60, 13):
            np.testing.assert_array_equal(a.view_of(member), b.view_of(member))

    def test_reset_reproducible_for_seed(self):
        # reset(seed) must land on exactly the views a fresh construction
        # with that seed draws — the determinism contract ablation sweeps
        # rely on when re-randomising one view object per repetition.
        view = UniformPartialView(60, 7, seed=8)
        view.reset(seed=21)
        fresh = UniformPartialView(60, 7, seed=21)
        np.testing.assert_array_equal(view._view_matrix, fresh._view_matrix)
        view.reset(seed=21)
        np.testing.assert_array_equal(view._view_matrix, fresh._view_matrix)

    def test_invalid_view_size(self):
        with pytest.raises(ValueError):
            UniformPartialView(10, 0)

"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulation.engine import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(2.0, lambda s, d: seen.append(d), "late")
        sched.schedule(1.0, lambda s, d: seen.append(d), "early")
        sched.run()
        assert seen == ["early", "late"]

    def test_fifo_tie_breaking(self):
        sched = EventScheduler()
        seen = []
        for label in "abc":
            sched.schedule(1.0, lambda s, d: seen.append(d), label)
        sched.run()
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        times = []
        sched.schedule(3.5, lambda s, d: times.append(s.now))
        sched.run()
        assert times == [3.5]
        assert sched.now == 3.5

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.schedule(-1.0, lambda s, d: None)

    def test_schedule_at_absolute_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule_at(5.0, lambda s, d: seen.append(s.now))
        sched.run()
        assert seen == [5.0]

    def test_schedule_at_past_rejected(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda s, d: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.schedule_at(0.5, lambda s, d: None)

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        seen = []

        def chain(s, depth):
            seen.append(depth)
            if depth < 3:
                s.schedule(1.0, chain, depth + 1)

        sched.schedule(0.0, chain, 0)
        sched.run()
        assert seen == [0, 1, 2, 3]
        assert sched.now == 3.0


class TestRunControl:
    def test_run_returns_processed_count(self):
        sched = EventScheduler()
        for _ in range(4):
            sched.schedule(1.0, lambda s, d: None)
        assert sched.run() == 4

    def test_run_until_limits_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(1.0, lambda s, d: seen.append(1))
        sched.schedule(5.0, lambda s, d: seen.append(5))
        processed = sched.run(until=2.0)
        assert processed == 1
        assert seen == [1]
        assert sched.now == 2.0
        # The remaining event still fires on the next run.
        sched.run()
        assert seen == [1, 5]

    def test_max_events(self):
        sched = EventScheduler()
        for _ in range(10):
            sched.schedule(1.0, lambda s, d: None)
        assert sched.run(max_events=3) == 3
        assert len(sched) == 7

    def test_step_on_empty_queue(self):
        sched = EventScheduler()
        assert sched.step() is False

    def test_cancel(self):
        sched = EventScheduler()
        seen = []
        keep = sched.schedule(1.0, lambda s, d: seen.append("keep"))
        drop = sched.schedule(2.0, lambda s, d: seen.append("drop"))
        sched.cancel(drop)
        sched.run()
        assert seen == ["keep"]
        assert keep.time == 1.0

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        first = sched.schedule(1.0, lambda s, d: None)
        sched.schedule(2.0, lambda s, d: None)
        sched.cancel(first)
        assert sched.peek_time() == 2.0

    def test_processed_counter_accumulates(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda s, d: None)
        sched.run()
        sched.schedule(1.0, lambda s, d: None)
        sched.run()
        assert sched.processed == 2

"""Unit tests for simulation result records and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.metrics import (
    ExecutionMetrics,
    build_success_count_result,
    summarize_executions,
)


def make_execution(reliability: float, rounds: int = 5, success: bool = False) -> ExecutionMetrics:
    return ExecutionMetrics(
        n=100,
        n_alive=90,
        n_reached_alive=int(round(reliability * 90)),
        reliability=reliability,
        rounds=rounds,
        messages_sent=300,
        duplicates=20,
        success=success,
    )


class TestSummarizeExecutions:
    def test_mean_and_std(self):
        executions = [make_execution(r) for r in (0.8, 0.9, 1.0)]
        estimate = summarize_executions(executions, n=100, q=0.9, mean_fanout=4.0)
        assert estimate.mean_reliability == pytest.approx(0.9)
        assert estimate.std_reliability == pytest.approx(np.std([0.8, 0.9, 1.0], ddof=1))
        assert estimate.repetitions == 3
        assert estimate.samples.shape == (3,)

    def test_success_rate(self):
        executions = [make_execution(0.9, success=True), make_execution(0.9, success=False)]
        estimate = summarize_executions(executions, n=100, q=0.9, mean_fanout=4.0)
        assert estimate.success_rate == pytest.approx(0.5)

    def test_single_execution_std_zero(self):
        estimate = summarize_executions([make_execution(0.7)], n=100, q=0.9, mean_fanout=4.0)
        assert estimate.std_reliability == 0.0
        assert estimate.stderr() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_executions([], n=100, q=0.9, mean_fanout=4.0)

    def test_confidence_interval_contains_mean_and_is_clipped(self):
        executions = [make_execution(r) for r in (0.95, 0.99, 1.0, 0.98)]
        estimate = summarize_executions(executions, n=100, q=0.9, mean_fanout=4.0)
        lo, hi = estimate.confidence_interval()
        assert lo <= estimate.mean_reliability <= hi
        assert 0.0 <= lo and hi <= 1.0

    def test_stderr_scales_with_repetitions(self):
        few = summarize_executions([make_execution(r) for r in (0.8, 1.0)], n=100, q=0.9, mean_fanout=4.0)
        many = summarize_executions(
            [make_execution(r) for r in (0.8, 1.0) * 8], n=100, q=0.9, mean_fanout=4.0
        )
        assert many.stderr() < few.stderr()


class TestSuccessCountResult:
    def test_build_from_counts(self):
        counts = np.array([18, 19, 20, 20, 17])
        result = build_success_count_result(counts, executions=20, analytical_reliability=0.95)
        assert result.simulations == 5
        assert result.empirical_pmf.shape == (21,)
        assert result.empirical_pmf.sum() == pytest.approx(1.0)
        assert result.analytical_pmf.sum() == pytest.approx(1.0, abs=1e-9)
        assert result.mean_count() == pytest.approx(np.mean(counts))

    def test_total_variation_distance_bounds(self):
        counts = np.array([20] * 10)
        result = build_success_count_result(counts, executions=20, analytical_reliability=0.99)
        assert 0.0 <= result.total_variation_distance() <= 1.0

    def test_perfect_match_has_small_tv(self):
        # Counts drawn exactly at the analytical mode with p = 1.0.
        counts = np.full(50, 10)
        result = build_success_count_result(counts, executions=10, analytical_reliability=1.0)
        assert result.total_variation_distance() == pytest.approx(0.0, abs=1e-12)

    def test_out_of_range_counts_rejected(self):
        with pytest.raises(ValueError):
            build_success_count_result(np.array([21]), executions=20, analytical_reliability=0.9)
        with pytest.raises(ValueError):
            build_success_count_result(np.array([-1]), executions=20, analytical_reliability=0.9)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            build_success_count_result(np.array([], dtype=int), executions=20, analytical_reliability=0.9)

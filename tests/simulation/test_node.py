"""Unit tests for the member state machine."""

from __future__ import annotations

import math

import numpy as np

from repro.simulation.failures import CrashTiming
from repro.simulation.node import Member


class TestReceiveLogic:
    def test_first_receipt_forwards(self):
        member = Member(member_id=1)
        assert member.on_receive(2.0)
        assert member.delivered
        assert member.first_receipt_time == 2.0

    def test_duplicate_does_not_forward(self):
        member = Member(member_id=1)
        member.on_receive(1.0)
        assert not member.on_receive(2.0)
        assert member.duplicates == 1
        assert member.receipts == 2
        assert member.first_receipt_time == 1.0

    def test_crash_before_receive_ignores_message(self):
        member = Member(member_id=2, alive=False, crash_timing=CrashTiming.BEFORE_RECEIVE)
        assert not member.on_receive(1.0)
        assert not member.received
        assert not member.delivered
        assert math.isinf(member.first_receipt_time)

    def test_crash_after_receive_records_but_does_not_forward_or_deliver(self):
        member = Member(member_id=3, alive=False, crash_timing=CrashTiming.AFTER_RECEIVE)
        assert not member.on_receive(1.0)
        assert member.received
        assert not member.delivered

    def test_record_forward_accumulates(self):
        member = Member(member_id=4)
        member.record_forward(3)
        member.record_forward(2)
        assert member.forwards == 5


class TestBuildGroup:
    def test_group_respects_alive_and_timing(self):
        alive = np.array([True, False, False])
        timing = np.array(
            [CrashTiming.BEFORE_RECEIVE, CrashTiming.AFTER_RECEIVE, CrashTiming.BEFORE_RECEIVE],
            dtype=object,
        )
        members = Member.build_group(3, alive, timing)
        assert len(members) == 3
        assert members[0].alive and not members[1].alive
        assert members[1].crash_timing is CrashTiming.AFTER_RECEIVE

    def test_non_crashtiming_entries_default(self):
        members = Member.build_group(2, np.array([True, True]), np.array([None, None], dtype=object))
        assert all(m.crash_timing is CrashTiming.BEFORE_RECEIVE for m in members)

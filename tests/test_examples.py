"""Smoke tests for the example scripts.

Every example must at least compile; the cheap ones are executed end-to-end
so the documented quickstart workflow cannot silently rot.
"""

from __future__ import annotations

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def example_paths() -> list[Path]:
    return sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_directory_present(self):
        assert EXAMPLES_DIR.is_dir()
        assert len(example_paths()) >= 3

    @pytest.mark.parametrize("path", example_paths(), ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "analytical reliability" in out
        assert "simulated mean reliability" in out

    def test_reproduce_figures_analytical_path(self, capsys):
        script = EXAMPLES_DIR / "reproduce_figures.py"
        argv_backup = sys.argv
        try:
            sys.argv = [str(script), "fig3"]
            with pytest.raises(SystemExit) as excinfo:
                runpy.run_path(str(script), run_name="__main__")
            assert excinfo.value.code == 0
        finally:
            sys.argv = argv_backup
        assert "fig3" in capsys.readouterr().out

"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.members == 1000
        assert args.fanout == 4.0
        assert args.alive_ratio == 0.9

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.figure == "fig3"
        args = build_parser().parse_args(["experiment", "sec4_percolation_validation"])
        assert args.figure == "sec4_percolation_validation"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_scale_presets(self):
        args = build_parser().parse_args(["run", "protocol_comparison", "--scale", "small"])
        assert args.experiment == "protocol_comparison"
        assert args.scale == pytest.approx(0.1)
        assert build_parser().parse_args(["run", "fig4"]).scale == pytest.approx(1.0)
        args = build_parser().parse_args(["run", "fig4", "--scale", "0.25"])
        assert args.scale == pytest.approx(0.25)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig4", "--scale", "tiny"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig4", "--scale", "1.5"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not_an_experiment"])


class TestAnalyze:
    def test_prints_reliability(self, capsys):
        assert main(["analyze", "-n", "500", "-f", "4.0", "-q", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "reliability R(q, P)" in out
        assert "0.96" in out or "0.97" in out

    def test_subcritical_configuration(self, capsys):
        assert main(["analyze", "-f", "1.0", "-q", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out

    def test_other_families(self, capsys):
        for family in ("fixed", "geometric", "uniform"):
            assert main(["analyze", "--family", family, "-f", "4.0", "-q", "0.9"]) == 0
        assert "reliability" in capsys.readouterr().out


class TestSimulate:
    def test_runs_and_reports(self, capsys):
        code = main(
            [
                "simulate",
                "-n",
                "300",
                "-f",
                "4.0",
                "-q",
                "0.9",
                "--repetitions",
                "4",
                "--seed",
                "1",
                "--conditional",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated reliability" in out
        assert "take-off rate" in out


class TestDesign:
    def test_reports_fanout_and_repeats(self, capsys):
        assert main(["design", "--reliability", "0.99", "--max-failed", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "required mean fanout" in out
        assert "required executions" in out


class TestExperiment:
    def test_analytical_figures_run(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "qualitative shape: OK" in out

    def test_scaled_simulation_figure(self, capsys):
        assert main(["experiment", "fig6", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out or "fig6" in out


class TestRun:
    def test_protocol_comparison_small_runs_all_protocols(self, capsys):
        assert main(["run", "protocol_comparison", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        for protocol in ("flooding", "pbcast", "lpbcast", "rdg", "fixed-fanout", "random-fanout"):
            assert protocol in out

    def test_run_matches_experiment_subcommand(self, capsys):
        assert main(["run", "fig6", "--scale", "0.1"]) == 0
        run_out = capsys.readouterr().out
        assert main(["experiment", "fig6", "--scale", "0.1"]) == 0
        experiment_out = capsys.readouterr().out
        assert run_out == experiment_out

"""Unit tests for the baseline multicast protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.simulation.failures import CrashTiming, FailurePattern


def all_protocols():
    return [
        FixedFanoutGossip(4),
        RandomFanoutGossip(PoissonFanout(4.0)),
        PbcastProtocol(fanout=2, rounds=5),
        LpbcastProtocol(fanout=3, rounds=6, view_size=20),
        RouteDrivenGossip(fanout=2, rounds=5, pull_fanout=1),
        FloodingProtocol(degree=4),
    ]


@pytest.fixture(params=all_protocols(), ids=lambda p: p.name)
def protocol(request):
    return request.param


class TestCommonProtocolBehaviour:
    def test_result_invariants(self, protocol):
        result = protocol.run(200, 0.8, seed=1)
        assert result.protocol == protocol.name
        assert result.n == 200
        assert result.alive.shape == (200,)
        assert result.delivered.shape == (200,)
        # Delivered members are always nonfailed, and the source is delivered.
        assert not np.any(result.delivered & ~result.alive)
        assert result.delivered[0]
        assert 0.0 <= result.reliability() <= 1.0
        assert result.messages_sent >= 0
        assert result.rounds >= 0

    def test_source_always_alive(self, protocol):
        result = protocol.run(100, 0.0, seed=2)
        assert result.alive[0]
        assert result.n_alive() == 1
        assert result.reliability() == 1.0  # the only nonfailed member has the message

    def test_reproducible(self, protocol):
        a = protocol.run(150, 0.7, seed=3)
        b = protocol.run(150, 0.7, seed=3)
        np.testing.assert_array_equal(a.delivered, b.delivered)
        assert a.messages_sent == b.messages_sent

    def test_explicit_failure_pattern(self, protocol):
        n = 60
        alive = np.ones(n, dtype=bool)
        alive[1] = False
        pattern = FailurePattern(
            alive=alive, timing=np.full(n, CrashTiming.BEFORE_RECEIVE, dtype=object)
        )
        result = protocol.run(n, 0.5, seed=4, failure_pattern=pattern)
        assert not result.delivered[1]
        assert result.n_alive() == n - 1

    def test_invalid_arguments(self, protocol):
        with pytest.raises(ValueError):
            protocol.run(1, 0.5)
        with pytest.raises(ValueError):
            protocol.run(100, 1.5)
        with pytest.raises(ValueError):
            protocol.run(100, 0.5, source=100)

    def test_messages_per_member(self, protocol):
        result = protocol.run(120, 0.9, seed=5)
        assert result.messages_per_member() == pytest.approx(result.messages_sent / 120)


class TestFixedFanoutGossip:
    def test_high_fanout_is_atomic(self):
        result = FixedFanoutGossip(10).run(200, 1.0, seed=6)
        assert result.is_atomic()

    def test_zero_fanout_reaches_only_source(self):
        result = FixedFanoutGossip(0).run(50, 1.0, seed=7)
        assert result.delivered.sum() == 1

    def test_reliability_close_to_poisson_in_degree_prediction(self):
        # Targets are chosen uniformly, so in-degrees are Poisson(f·q) and the
        # reached fraction follows the Poisson fixed point at the same mean
        # fanout even though the out-degree is constant (see DESIGN.md).
        from repro.core.poisson_case import poisson_reliability

        values = [FixedFanoutGossip(4).run(1500, 0.9, seed=s).reliability() for s in range(5)]
        assert np.mean(values) == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.04)


class TestRandomFanoutGossip:
    def test_matches_direct_simulation_statistics(self):
        from repro.core.poisson_case import poisson_reliability

        values = [
            RandomFanoutGossip(PoissonFanout(4.0)).run(1200, 0.9, seed=s).reliability()
            for s in range(10)
        ]
        # Individual runs are bimodal (occasionally the gossip dies out
        # immediately); compare the runs that took off with the analytical
        # reliability and check that die-outs are the minority.
        spread = [v for v in values if v > 0.5]
        assert len(spread) >= 7
        assert np.mean(spread) == pytest.approx(poisson_reliability(4.0, 0.9), abs=0.04)

    def test_rejects_non_distribution(self):
        with pytest.raises(TypeError):
            RandomFanoutGossip("poisson")  # type: ignore[arg-type]


class TestPbcast:
    def test_broadcast_reach_zero_still_gossips_from_source(self):
        result = PbcastProtocol(fanout=3, rounds=8, broadcast_reach=0.0).run(300, 1.0, seed=8)
        assert result.reliability() > 0.5

    def test_more_rounds_do_not_reduce_reliability(self):
        short = PbcastProtocol(fanout=2, rounds=1).run(400, 0.8, seed=9).reliability()
        long = PbcastProtocol(fanout=2, rounds=8).run(400, 0.8, seed=9).reliability()
        assert long >= short - 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PbcastProtocol(fanout=0)
        with pytest.raises(ValueError):
            PbcastProtocol(broadcast_reach=1.5)


class TestLpbcast:
    def test_small_view_still_disseminates(self):
        result = LpbcastProtocol(fanout=3, rounds=10, view_size=5).run(300, 1.0, seed=10)
        assert result.reliability() > 0.8

    def test_round_budget_limits_spread(self):
        one_round = LpbcastProtocol(fanout=2, rounds=1, view_size=20).run(500, 1.0, seed=11)
        many_rounds = LpbcastProtocol(fanout=2, rounds=10, view_size=20).run(500, 1.0, seed=11)
        assert one_round.reliability() < many_rounds.reliability()


class TestRdg:
    def test_pull_phase_improves_reliability(self):
        no_pull = RouteDrivenGossip(fanout=2, rounds=4, pull_fanout=0).run(400, 0.8, seed=12)
        with_pull = RouteDrivenGossip(fanout=2, rounds=4, pull_fanout=2).run(400, 0.8, seed=12)
        assert with_pull.reliability() >= no_pull.reliability()

    def test_terminates_when_atomic(self):
        result = RouteDrivenGossip(fanout=4, rounds=50, pull_fanout=2).run(200, 1.0, seed=13)
        assert result.is_atomic()
        assert result.rounds < 50


class TestFlooding:
    def test_atomic_on_connected_overlay(self):
        result = FloodingProtocol(degree=6).run(300, 1.0, seed=14)
        assert result.is_atomic()

    def test_reliability_upper_bounds_gossip_at_same_degree(self):
        flood = np.mean([FloodingProtocol(degree=3).run(400, 0.7, seed=s).reliability() for s in range(4)])
        gossip = np.mean([FixedFanoutGossip(3).run(400, 0.7, seed=s).reliability() for s in range(4)])
        assert flood >= gossip - 0.05

    def test_message_cost_scales_with_degree(self):
        low = FloodingProtocol(degree=2).run(300, 1.0, seed=15).messages_sent
        high = FloodingProtocol(degree=8).run(300, 1.0, seed=15).messages_sent
        assert high > low

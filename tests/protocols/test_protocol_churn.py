"""Churn-plane tests for the protocol engines.

The dynamic-membership plane must (1) be invisible at churn rate 0 —
bit-for-bit identical results to the static path for every protocol, because
a zero-rate model draws no randomness and trivial schedules are skipped,
(2) account survivors correctly (members that left are neither delivered nor
in the denominator), (3) waste sends to departed peers without charging them
to the network-loss counters, (4) refuse the scalar-replay fallback (which
cannot apply per-round events), and (5) show the peer-sampling protocol's
view repair paying off against a frozen partial view of the same size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    HyParViewProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.protocols.base import Protocol
from repro.simulation.churn import (
    DeterministicChurnModel,
    PoissonChurnModel,
    trivial_schedule_batch,
)
from repro.simulation.gossip import simulate_gossip_batch
from repro.simulation.protocol_batch import simulate_protocol_batch
from tests.helpers.statistical import assert_same_distribution


def all_protocols():
    return [
        FixedFanoutGossip(4),
        RandomFanoutGossip(PoissonFanout(4.0)),
        PbcastProtocol(fanout=2, rounds=5),
        LpbcastProtocol(fanout=3, rounds=6, view_size=20),
        RouteDrivenGossip(fanout=2, rounds=5, pull_fanout=1),
        FloodingProtocol(degree=4),
        HyParViewProtocol(fanout=3, rounds=6, active_size=8, passive_size=20),
    ]


@pytest.fixture(params=all_protocols(), ids=lambda p: p.name)
def protocol(request):
    return request.param


class TestZeroChurnIsExact:
    """A zero-rate churn model must not perturb the engines at all."""

    def test_batched_identical_to_no_churn(self, protocol):
        base = simulate_protocol_batch(protocol, 150, 0.85, repetitions=8, seed=11)
        zero = simulate_protocol_batch(
            protocol, 150, 0.85, repetitions=8, seed=11, churn=PoissonChurnModel()
        )
        np.testing.assert_array_equal(base.alive, zero.alive)
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        np.testing.assert_array_equal(base.messages_sent, zero.messages_sent)
        np.testing.assert_array_equal(base.rounds, zero.rounds)
        assert zero.present is None

    def test_trivial_schedule_identical_to_no_churn(self, protocol):
        base = simulate_protocol_batch(protocol, 150, 0.85, repetitions=8, seed=17)
        zero = simulate_protocol_batch(
            protocol, 150, 0.85, repetitions=8, seed=17,
            churn=trivial_schedule_batch(150, 8),
        )
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        np.testing.assert_array_equal(base.messages_sent, zero.messages_sent)

    def test_survivor_metrics_degrade_to_static_ones(self, protocol):
        result = simulate_protocol_batch(
            protocol, 150, 0.85, repetitions=8, seed=11, churn=PoissonChurnModel()
        )
        np.testing.assert_array_equal(result.survivors(), result.alive)
        assert np.all(result.survivor_fraction() == 1.0)
        np.testing.assert_array_equal(
            result.reliability_among_survivors(), result.reliability()
        )

    def test_gossip_engine_identical_to_no_churn(self):
        base = simulate_gossip_batch(300, PoissonFanout(4.0), 0.9, repetitions=10, seed=7)
        zero = simulate_gossip_batch(
            300, PoissonFanout(4.0), 0.9, repetitions=10, seed=7,
            churn=trivial_schedule_batch(300, 10),
        )
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        np.testing.assert_array_equal(base.messages_sent, zero.messages_sent)
        np.testing.assert_array_equal(base.rounds, zero.rounds)


class TestChurnedRuns:
    def test_departed_members_never_deliver(self, protocol):
        # Members 10..14 leave at round 0: never present, not even for the
        # initial-state deliveries (pbcast's phase-1 broadcast).
        churn = DeterministicChurnModel(leaves=tuple((0, m) for m in range(10, 15)))
        result = simulate_protocol_batch(
            protocol, 120, 1.0, repetitions=6, seed=23, churn=churn
        )
        assert result.present is not None
        assert not result.present[:, 10:15].any()
        assert not result.survivors()[:, 10:15].any()
        assert not result.delivered[:, 10:15].any()

    def test_survivor_accounting_matches_schedule(self, protocol):
        model = PoissonChurnModel(leave_rate=0.05, join_rate=0.05, initially_absent=0.1)
        result = simulate_protocol_batch(
            protocol, 200, 0.9, repetitions=10, seed=29, churn=model
        )
        assert result.present is not None
        np.testing.assert_array_equal(result.survivors(), result.alive & result.present)
        assert np.all(result.survivor_fraction() <= 1.0)
        assert np.all(result.n_survivors() >= 1)  # the source never churns
        rel = result.reliability_among_survivors()
        assert np.all((rel >= 0.0) & (rel <= 1.0))

    def test_churn_wasted_sends_are_not_network_drops(self, protocol):
        model = PoissonChurnModel(leave_rate=0.1, initially_absent=0.2)
        result = simulate_protocol_batch(
            protocol, 150, 0.9, repetitions=8, seed=31, churn=model
        )
        # Sends to departed peers are wasted, but only a lossy NetworkModel
        # may charge messages_dropped.
        assert result.messages_dropped.sum() == 0
        assert result.messages_sent.sum() > 0

    def test_harsher_churn_leaves_fewer_survivors(self, protocol):
        gentle = simulate_protocol_batch(
            protocol, 300, 0.9, repetitions=12, seed=37,
            churn=PoissonChurnModel(leave_rate=0.02),
        )
        harsh = simulate_protocol_batch(
            protocol, 300, 0.9, repetitions=12, seed=37,
            churn=PoissonChurnModel(leave_rate=0.25),
        )
        assert harsh.survivor_fraction().mean() < gentle.survivor_fraction().mean()

    def test_churn_composes_with_failures(self, protocol):
        model = PoissonChurnModel(leave_rate=0.08)
        result = simulate_protocol_batch(
            protocol, 200, 0.7, repetitions=8, seed=41, churn=model
        )
        # Survivors are a subset of nonfailed members: crashes and churn stack.
        assert np.all(result.n_survivors() <= result.n_alive())
        assert result.delivered[~result.alive].sum() == 0


class TestScalarReplayFallback:
    class _ScalarOnly(Protocol):
        name = "scalar-only"

        def _disseminate(self, n, alive, source, rng, network=None):
            delivered = np.zeros(n, dtype=bool)
            delivered[source] = True
            return delivered, 0, 1

    def test_fallback_refuses_churn(self):
        protocol = self._ScalarOnly()
        with pytest.raises(NotImplementedError, match="churn-aware"):
            simulate_protocol_batch(
                protocol, 50, 0.9, repetitions=4, seed=3,
                churn=DeterministicChurnModel(leaves=((1, 5),)),
            )

    def test_fallback_still_accepts_trivial_churn(self):
        # A zero-rate model never reaches the hook, so scalar-only
        # subclasses keep working for static-membership batches.
        protocol = self._ScalarOnly()
        result = simulate_protocol_batch(
            protocol, 50, 0.9, repetitions=4, seed=3, churn=PoissonChurnModel()
        )
        assert result.present is None


class TestHyParView:
    def test_scalar_and_batched_agree_in_distribution(self):
        protocol = HyParViewProtocol(fanout=3, rounds=6, active_size=8, passive_size=20)
        rng = np.random.default_rng(5)
        scalar_counts = [
            protocol.run(200, 0.9, seed=rng).delivered.sum() for _ in range(60)
        ]
        batch = simulate_protocol_batch(protocol, 200, 0.9, repetitions=60, seed=6)
        assert_same_distribution(
            scalar_counts, batch.n_delivered(), label="hyparview delivered"
        )

    def test_zero_churn_runs_need_no_repairs(self):
        protocol = HyParViewProtocol(fanout=3, rounds=6)
        simulate_protocol_batch(protocol, 150, 0.9, repetitions=6, seed=9)
        stats = protocol.last_batch_stats
        assert stats is not None
        assert stats["repairs"] == 0
        assert stats["view_staleness"] == 0.0
        assert stats["repair_latency"] == 0.0

    def test_churn_triggers_staleness_and_repairs(self):
        protocol = HyParViewProtocol(fanout=3, rounds=8, active_size=8, passive_size=20)
        model = PoissonChurnModel(leave_rate=0.1, join_rate=0.1, initially_absent=0.1)
        simulate_protocol_batch(protocol, 300, 0.9, repetitions=10, seed=13, churn=model)
        stats = protocol.last_batch_stats
        assert stats["view_staleness"] > 0.0
        assert stats["repairs"] > 0
        assert stats["repair_latency"] > 0.0

    def test_view_repair_beats_frozen_view_of_equal_size(self):
        # The churn_resilience acceptance claim, pinned at a fixed seed:
        # under heavy churn, push gossip over self-repairing size-8 views
        # must be at least as reliable as the same gossip over frozen size-8
        # views (small slack for Monte-Carlo noise).
        model = PoissonChurnModel(leave_rate=0.15, join_rate=0.15, initially_absent=0.1)
        peer = HyParViewProtocol(fanout=4, rounds=8, active_size=8, passive_size=30)
        frozen = LpbcastProtocol(fanout=4, rounds=8, view_size=8)
        peer_rel = simulate_protocol_batch(
            peer, 400, 0.9, repetitions=24, seed=17, churn=model
        ).reliability_among_survivors()
        frozen_rel = simulate_protocol_batch(
            frozen, 400, 0.9, repetitions=24, seed=17, churn=model
        ).reliability_among_survivors()
        assert peer_rel.mean() >= frozen_rel.mean() - 0.02

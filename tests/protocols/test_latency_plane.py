"""Latency-plane guarantees across the whole protocol zoo.

Two pins per protocol:

* **latency-off bit-identity** — attaching a ``NetworkModel()`` (constant
  unit latency, no loss) must not perturb a single boolean of the batched
  execution: the plane's constant fast path consumes no randomness and
  reorders nothing.
* **delivery-time surface** — when the plane is on, the finite entries of
  ``delivery_times`` are exactly the delivered cells, and the percentile
  accessor reports an ordered p50/p99/p999.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.protocol_comparison import protocol_zoo
from repro.protocols import FixedFanoutGossip
from repro.simulation.network import NetworkModel, latency_exponential

ZOO = protocol_zoo(4, 8, include_peer_sampling=True, include_recovery=True)


@pytest.mark.parametrize("protocol_id,protocol", ZOO, ids=[row[0] for row in ZOO])
@pytest.mark.parametrize("q", [1.0, 0.9], ids=["q1.0", "q0.9"])
class TestLatencyOffBitIdentity:
    def test_constant_unit_latency_is_bit_identical(self, protocol_id, protocol, q):
        base = protocol.run_batch(150, q, repetitions=12, seed=4242)
        timed = protocol.run_batch(150, q, repetitions=12, seed=4242, network=NetworkModel())
        np.testing.assert_array_equal(base.delivered, timed.delivered)
        np.testing.assert_array_equal(base.rounds, timed.rounds)
        np.testing.assert_array_equal(base.messages_sent, timed.messages_sent)
        assert base.delivery_times is None
        assert timed.delivery_times is not None
        np.testing.assert_array_equal(np.isfinite(timed.delivery_times), timed.delivered)


@pytest.mark.parametrize("protocol_id,protocol", ZOO, ids=[row[0] for row in ZOO])
class TestDeliveryTimeSurface:
    def test_random_latency_reports_ordered_percentiles(self, protocol_id, protocol):
        result = protocol.run_batch(
            120,
            0.9,
            repetitions=8,
            seed=99,
            network=NetworkModel(latency=latency_exponential(1.5)),
        )
        np.testing.assert_array_equal(np.isfinite(result.delivery_times), result.delivered)
        # The source delivers to itself at time zero in every execution.
        assert (result.delivery_times[:, 0] == 0.0).all()
        pct = result.delivery_percentiles()
        assert list(pct) == ["p50", "p99", "p999"]
        assert pct["p50"] <= pct["p99"] <= pct["p999"]
        assert np.isfinite(pct["p999"])


class TestDeliveryPercentilesGating:
    def test_percentiles_raise_without_a_plane(self):
        result = FixedFanoutGossip(4).run_batch(80, 0.9, repetitions=4, seed=5)
        assert result.delivery_times is None
        with pytest.raises(ValueError):
            result.delivery_percentiles()

"""Tests for the two-phase recovery protocols (lazy-push and anti-entropy).

The recovery plane must (1) keep the scalar reference and the batched array
program statistically equivalent at small and large group sizes, (2) be
bit-identical between plane-enabled runs at zero loss / zero churn and
plane-free runs at the same seed, (3) guarantee recovery in the loss-free
single-missing-member pin (a digest that reaches the one gap always pulls
the payload back), (4) degrade gracefully when the retry budget is
exhausted, and (5) keep the control/payload accounting split consistent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols import AntiEntropyProtocol, LazyPushProtocol
from repro.simulation.churn import PoissonChurnModel
from repro.simulation.network import GilbertElliottNetworkModel, NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from tests.helpers.statistical import (
    assert_reliability_within_band,
    assert_same_distribution,
)


def recovery_protocols():
    return [
        LazyPushProtocol(fanout=3, rounds=8, eager_threshold=0.4, retry_budget=5),
        AntiEntropyProtocol(fanout=2, rounds=6),
    ]


@pytest.fixture(params=recovery_protocols(), ids=lambda p: p.name)
def protocol(request):
    return request.param


class TestZeroPlanesAreExact:
    """Zero-loss / zero-churn planes must not perturb either engine."""

    def test_batched_identical_to_plane_free(self, protocol):
        base = simulate_protocol_batch(protocol, 150, 0.85, repetitions=8, seed=11)
        zero = simulate_protocol_batch(
            protocol, 150, 0.85, repetitions=8, seed=11,
            network=NetworkModel(loss_probability=0.0),
            churn=PoissonChurnModel(),
        )
        np.testing.assert_array_equal(base.alive, zero.alive)
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        np.testing.assert_array_equal(base.messages_sent, zero.messages_sent)
        np.testing.assert_array_equal(
            base.control_messages(), zero.control_messages()
        )
        np.testing.assert_array_equal(base.rounds, zero.rounds)
        assert zero.messages_dropped.sum() == 0

    def test_batched_identical_under_zero_gilbert_elliott(self, protocol):
        # A bursty channel whose states never drop must also be invisible.
        base = simulate_protocol_batch(protocol, 150, 0.85, repetitions=8, seed=17)
        zero = simulate_protocol_batch(
            protocol, 150, 0.85, repetitions=8, seed=17,
            network=GilbertElliottNetworkModel(
                loss_probability=0.0, bad_loss_probability=0.0,
                p_good_to_bad=0.2, p_bad_to_good=0.4,
            ),
        )
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        np.testing.assert_array_equal(base.messages_sent, zero.messages_sent)
        np.testing.assert_array_equal(base.rounds, zero.rounds)

    def test_scalar_identical_to_plane_free(self, protocol):
        base = protocol.run(150, 0.85, seed=13)
        zero = protocol.run(
            150, 0.85, seed=13, network=NetworkModel(loss_probability=0.0)
        )
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        assert base.messages_sent == zero.messages_sent
        assert base.control_messages_sent == zero.control_messages_sent
        assert base.rounds == zero.rounds
        assert zero.messages_dropped == 0


class TestScalarBatchedEquivalence:
    """The two engines must agree in distribution, with and without loss."""

    Q = 0.9
    LOSS = 0.25
    REPS = 60

    @pytest.mark.parametrize("n", [50, 500])
    def test_delivery_and_costs_match_under_loss(self, protocol, n):
        rng = np.random.default_rng(71)
        network = NetworkModel(loss_probability=self.LOSS)
        scalar = [
            protocol.run(n, self.Q, seed=rng, network=network)
            for _ in range(self.REPS)
        ]
        batch = simulate_protocol_batch(
            protocol, n, self.Q, repetitions=self.REPS, seed=72,
            network=NetworkModel(loss_probability=self.LOSS),
        )
        label = f"{protocol.name} n={n} loss={self.LOSS}"
        assert_same_distribution(
            [r.delivered.sum() for r in scalar],
            batch.n_delivered(),
            label=f"{label} delivered",
        )
        assert_reliability_within_band(
            [r.reliability() for r in scalar],
            batch.reliability(),
            band=0.03,
            label=f"{label} reliability",
        )
        assert_same_distribution(
            [r.messages_sent for r in scalar],
            batch.messages_sent,
            label=f"{label} messages",
        )
        assert_same_distribution(
            [r.control_messages_sent for r in scalar],
            batch.control_messages(),
            label=f"{label} control messages",
        )

    @pytest.mark.parametrize("n", [50, 500])
    def test_loss_free_engines_match(self, protocol, n):
        rng = np.random.default_rng(73)
        scalar = [protocol.run(n, self.Q, seed=rng) for _ in range(self.REPS)]
        batch = simulate_protocol_batch(
            protocol, n, self.Q, repetitions=self.REPS, seed=74
        )
        assert_same_distribution(
            [r.delivered.sum() for r in scalar],
            batch.n_delivered(),
            label=f"{protocol.name} n={n} loss-free delivered",
        )


class TestGuaranteedRecovery:
    """Loss-free single-gap pins: a digest that reaches the gap repairs it."""

    def test_lazy_push_exact_two_member_recovery(self):
        # n=2, pure-lazy (threshold 0): round 1 is one IHAVE digest that arms
        # the missing member; round 2 is IWANT -> payload answer, then both
        # holders send one final (useless) digest each.  Every message is
        # control except the single payload answer.
        protocol = LazyPushProtocol(
            fanout=1, rounds=2, eager_threshold=0.0, retry_budget=1
        )
        result = protocol.run(2, 1.0, seed=5)
        assert result.delivered.all()
        assert result.rounds == 2
        assert result.messages_sent == 5
        assert result.control_messages_sent == 4
        assert result.payload_messages_sent() == 1

        batch = simulate_protocol_batch(protocol, 2, 1.0, repetitions=6, seed=6)
        assert batch.delivered.all()
        np.testing.assert_array_equal(batch.messages_sent, np.full(6, 5))
        np.testing.assert_array_equal(batch.control_messages(), np.full(6, 4))
        np.testing.assert_array_equal(batch.payload_messages_sent(), np.full(6, 1))

    def test_anti_entropy_exact_two_member_recovery(self):
        # n=2, one round: two digests (one per member) and two transfers —
        # member 0 pushes, member 1 pulls, both repairing the same gap.
        protocol = AntiEntropyProtocol(fanout=1, rounds=1)
        result = protocol.run(2, 1.0, seed=7)
        assert result.delivered.all()
        assert result.rounds == 1
        assert result.messages_sent == 4
        assert result.control_messages_sent == 2
        assert result.payload_messages_sent() == 2

        batch = simulate_protocol_batch(protocol, 2, 1.0, repetitions=6, seed=8)
        assert batch.delivered.all()
        np.testing.assert_array_equal(batch.messages_sent, np.full(6, 4))
        np.testing.assert_array_equal(batch.control_messages(), np.full(6, 2))

    def test_anti_entropy_always_converges_loss_free(self):
        # With enough rounds and no loss, pull-based reconciliation reaches
        # every nonfailed member from a single source copy.
        protocol = AntiEntropyProtocol(fanout=2, rounds=30)
        batch = simulate_protocol_batch(protocol, 100, 0.8, repetitions=10, seed=9)
        assert np.all(batch.reliability() == 1.0)


class TestRetryBudget:
    """Budget exhaustion stops recovery gracefully, never wedges it."""

    def test_zero_budget_disables_recovery_entirely(self):
        # Pure-lazy with no budget: nobody may send an IWANT, so nothing but
        # the source ever holds the payload and all traffic is digests.
        protocol = LazyPushProtocol(
            fanout=2, rounds=5, eager_threshold=0.0, retry_budget=0
        )
        result = protocol.run(60, 0.9, seed=21)
        assert result.delivered.sum() == 1 and result.delivered[0]
        assert result.control_messages_sent == result.messages_sent > 0

        batch = simulate_protocol_batch(protocol, 60, 0.9, repetitions=8, seed=22)
        assert np.all(batch.n_delivered() == 1)
        np.testing.assert_array_equal(
            batch.control_messages(), batch.messages_sent
        )
        assert protocol.last_batch_stats["iwants_sent"] == 0
        assert protocol.last_batch_stats["recoveries"] == 0

    def test_batch_stats_invariants_under_heavy_loss(self):
        protocol = LazyPushProtocol(
            fanout=2, rounds=12, eager_threshold=0.1, retry_budget=1
        )
        simulate_protocol_batch(
            protocol, 200, 0.9, repetitions=10, seed=23,
            network=NetworkModel(loss_probability=0.8),
        )
        stats = protocol.last_batch_stats
        assert stats is not None
        assert stats["iwants_sent"] >= stats["recoveries"] >= 0
        # At 80% loss with a single-IWANT budget most repair attempts fail,
        # so some members must end the run missing with no budget left.
        assert stats["budget_exhausted"] > 0

    def test_larger_budget_never_hurts_reliability(self):
        small = LazyPushProtocol(
            fanout=2, rounds=10, eager_threshold=0.3, retry_budget=1
        )
        large = LazyPushProtocol(
            fanout=2, rounds=10, eager_threshold=0.3, retry_budget=10
        )
        kwargs = dict(repetitions=30, seed=24)
        lo = simulate_protocol_batch(
            small, 200, 0.9, network=NetworkModel(loss_probability=0.4), **kwargs
        )
        hi = simulate_protocol_batch(
            large, 200, 0.9, network=NetworkModel(loss_probability=0.4), **kwargs
        )
        assert hi.reliability().mean() >= lo.reliability().mean() - 0.02


class TestAccountingSplit:
    """control <= messages everywhere; the split survives the loss plane."""

    def test_control_bounded_by_messages(self, protocol):
        batch = simulate_protocol_batch(
            protocol, 150, 0.9, repetitions=10, seed=31,
            network=NetworkModel(loss_probability=0.3),
        )
        assert np.all(batch.control_messages() <= batch.messages_sent)
        np.testing.assert_array_equal(
            batch.payload_messages_sent() + batch.control_messages(),
            batch.messages_sent,
        )
        scalar = protocol.run(150, 0.9, seed=32, network=NetworkModel(loss_probability=0.3))
        assert 0 <= scalar.control_messages_sent <= scalar.messages_sent
        assert (
            scalar.payload_messages_sent() + scalar.control_messages_sent
            == scalar.messages_sent
        )

    def test_per_replica_result_carries_the_split(self, protocol):
        batch = simulate_protocol_batch(protocol, 100, 0.9, repetitions=4, seed=33)
        single = batch.result(2)
        assert single.control_messages_sent == int(batch.control_messages()[2])
        assert single.payload_messages_sent() == int(batch.payload_messages_sent()[2])


class TestChurnComposition:
    """The recovery protocols accept the churn plane and stay consistent."""

    def test_batched_invariants_under_loss_and_churn(self, protocol):
        churn = PoissonChurnModel(
            leave_rate=0.05, join_rate=0.05, initially_absent=0.1
        )
        result = simulate_protocol_batch(
            protocol, 200, 0.9, repetitions=10, seed=41,
            network=NetworkModel(loss_probability=0.3), churn=churn,
        )
        assert not np.any(result.delivered & ~result.alive)
        assert np.all(result.delivered[:, 0])
        rel = result.reliability_among_survivors()
        assert np.all((rel >= 0.0) & (rel <= 1.0))
        assert np.all(result.messages_dropped <= result.messages_sent)
        assert np.all(result.control_messages() <= result.messages_sent)

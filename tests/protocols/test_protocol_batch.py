"""Scalar ↔ batched equivalence tests for the multi-protocol engine.

Every bundled protocol's ``_disseminate_batch`` hook must agree with the
scalar :meth:`~repro.protocols.base.Protocol.run` reference **in
distribution** (the engines consume randomness in different orders), and the
two engines must agree **exactly** — or raise the same error — on the
deterministic edge cases of the failure layer (n=1, q=0, q=1, targeted
crashes, mid-execution crash timing).  All distributional checks go through
the shared harness in ``tests/helpers/statistical.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.simulation.failures import TargetedCrashModel, UniformCrashModel
from repro.simulation.protocol_batch import (
    BatchProtocolResult,
    simulate_protocol_batch,
)
from tests.helpers.statistical import (
    assert_reliability_within_band,
    assert_same_counts_chisquare,
    assert_same_distribution,
)


def all_protocols():
    return [
        FixedFanoutGossip(4),
        RandomFanoutGossip(PoissonFanout(4.0)),
        PbcastProtocol(fanout=2, rounds=5),
        LpbcastProtocol(fanout=3, rounds=6, view_size=20),
        RouteDrivenGossip(fanout=2, rounds=5, pull_fanout=1),
        FloodingProtocol(degree=4),
    ]


@pytest.fixture(params=all_protocols(), ids=lambda p: p.name)
def protocol(request):
    return request.param


def _scalar_samples(protocol, n, q, repetitions, seed, **kwargs):
    rng = np.random.default_rng(seed)
    return [protocol.run(n, q, seed=rng, **kwargs) for _ in range(repetitions)]


class TestBatchBasics:
    def test_shapes_and_invariants(self, protocol):
        result = simulate_protocol_batch(protocol, 150, 0.8, repetitions=10, seed=1)
        assert isinstance(result, BatchProtocolResult)
        assert result.protocol == protocol.name
        assert result.alive.shape == result.delivered.shape == (10, 150)
        assert result.repetitions == 10
        # Delivered members are always nonfailed; the source is delivered.
        assert not np.any(result.delivered & ~result.alive)
        assert np.all(result.delivered[:, 0])
        assert np.all(result.alive[:, 0])
        assert np.all((result.reliability() >= 0.0) & (result.reliability() <= 1.0))
        assert np.all(result.messages_sent >= 0)
        assert np.all(result.rounds >= 0)

    def test_identical_seed_determinism(self, protocol):
        a = simulate_protocol_batch(protocol, 120, 0.7, repetitions=6, seed=42)
        b = simulate_protocol_batch(protocol, 120, 0.7, repetitions=6, seed=42)
        np.testing.assert_array_equal(a.alive, b.alive)
        np.testing.assert_array_equal(a.delivered, b.delivered)
        np.testing.assert_array_equal(a.messages_sent, b.messages_sent)
        np.testing.assert_array_equal(a.rounds, b.rounds)

    def test_run_batch_convenience(self, protocol):
        direct = simulate_protocol_batch(protocol, 90, 0.9, repetitions=5, seed=3)
        wrapped = protocol.run_batch(90, 0.9, repetitions=5, seed=3)
        np.testing.assert_array_equal(direct.delivered, wrapped.delivered)
        np.testing.assert_array_equal(direct.messages_sent, wrapped.messages_sent)

    def test_replica_round_trip(self, protocol):
        result = simulate_protocol_batch(protocol, 80, 0.85, repetitions=4, seed=5)
        for replica in range(4):
            scalar = result.result(replica)
            assert scalar.protocol == protocol.name
            assert scalar.n_alive() == int(result.n_alive()[replica])
            assert scalar.reliability() == pytest.approx(
                float(result.reliability()[replica])
            )

    def test_scalar_fallback_hook_for_unbatched_subclasses(self):
        # A subclass without its own batched hook runs through the base
        # class's scalar replay and still honours the result contract.
        from repro.protocols.base import Protocol

        class ScalarOnlyGossip(FixedFanoutGossip):
            name = "scalar-only"
            _disseminate_batch = Protocol._disseminate_batch

        result = simulate_protocol_batch(ScalarOnlyGossip(3), 60, 0.9, repetitions=4, seed=7)
        assert result.alive.shape == (4, 60)
        assert not np.any(result.delivered & ~result.alive)
        assert np.all(result.reliability() > 0.0)
        batched = simulate_protocol_batch(FixedFanoutGossip(3), 60, 0.9, repetitions=4, seed=7)
        # Same failure layer either way: the alive masks coincide per seed.
        np.testing.assert_array_equal(result.alive, batched.alive)

    def test_invalid_arguments(self, protocol):
        with pytest.raises(ValueError):
            simulate_protocol_batch(protocol, 100, 0.5, repetitions=0)
        with pytest.raises(ValueError):
            simulate_protocol_batch(protocol, 100, 1.5, repetitions=3)
        with pytest.raises(ValueError):
            simulate_protocol_batch(protocol, 100, 0.5, repetitions=3, source=100)


class TestDistributionEquivalence:
    """Each batched protocol matches its scalar pin in distribution."""

    @pytest.mark.parametrize("n,repetitions", [(50, 150), (500, 60)])
    def test_delivery_and_reliability_match(self, protocol, n, repetitions):
        scalar = _scalar_samples(protocol, n, 0.85, repetitions, seed=100)
        batch = simulate_protocol_batch(
            protocol, n, 0.85, repetitions=repetitions, seed=200
        )
        label = f"{protocol.name} n={n}"
        scalar_delivered = [r.delivered.sum() for r in scalar]
        assert_same_distribution(
            scalar_delivered, batch.n_delivered(), label=f"{label} delivered"
        )
        assert_same_counts_chisquare(
            scalar_delivered, batch.n_delivered(), label=f"{label} delivered"
        )
        assert_reliability_within_band(
            [r.reliability() for r in scalar],
            batch.reliability(),
            band=0.03,
            label=f"{label} reliability",
        )

    def test_message_costs_match(self, protocol):
        scalar = _scalar_samples(protocol, 300, 0.9, 80, seed=300)
        batch = simulate_protocol_batch(protocol, 300, 0.9, repetitions=80, seed=400)
        assert_same_distribution(
            [r.messages_sent for r in scalar],
            batch.messages_sent,
            label=f"{protocol.name} messages",
        )

    def test_rounds_match(self, protocol):
        scalar = _scalar_samples(protocol, 300, 0.9, 80, seed=500)
        batch = simulate_protocol_batch(protocol, 300, 0.9, repetitions=80, seed=600)
        s = np.array([r.rounds for r in scalar], dtype=float)
        assert abs(s.mean() - batch.rounds.mean()) < 1.0


class TestCrossProtocolOrdering:
    """Sanity ordering at equal effort: flooding >= pbcast >= fixed-fanout."""

    N = 400
    Q = 0.85
    REPS = 80

    def _mean_reliability(self, protocol, seed):
        result = simulate_protocol_batch(
            protocol, self.N, self.Q, repetitions=self.REPS, seed=seed
        )
        return float(result.reliability().mean())

    def test_flooding_at_least_pbcast_at_least_fixed(self):
        flooding = self._mean_reliability(FloodingProtocol(degree=4), seed=11)
        pbcast = self._mean_reliability(
            PbcastProtocol(fanout=4, rounds=8, broadcast_reach=0.8), seed=12
        )
        fixed = self._mean_reliability(FixedFanoutGossip(4), seed=13)
        assert flooding >= pbcast - 0.02
        assert pbcast >= fixed - 0.02


class TestFailureLayerEdgeCases:
    """Both engines agree exactly — or raise the same error — on edge cases."""

    def test_n_one_raises_in_both_engines(self, protocol):
        with pytest.raises(ValueError):
            protocol.run(1, 0.5, seed=1)
        with pytest.raises(ValueError):
            simulate_protocol_batch(protocol, 1, 0.5, repetitions=3, seed=1)

    def test_q_zero_only_source_survives_exactly(self, protocol):
        scalar = protocol.run(40, 0.0, seed=2)
        batch = simulate_protocol_batch(protocol, 40, 0.0, repetitions=5, seed=3)
        assert scalar.n_alive() == 1 and scalar.delivered.sum() == 1
        assert scalar.reliability() == 1.0
        assert np.all(batch.n_alive() == 1)
        assert np.all(batch.n_delivered() == 1)
        assert np.all(batch.reliability() == 1.0)
        np.testing.assert_array_equal(
            batch.delivered, np.tile(scalar.delivered, (5, 1))
        )

    def test_q_one_everyone_alive_exactly(self, protocol):
        scalar = protocol.run(60, 1.0, seed=4)
        batch = simulate_protocol_batch(protocol, 60, 1.0, repetitions=5, seed=5)
        assert scalar.n_alive() == 60
        assert np.all(batch.n_alive() == 60)
        np.testing.assert_array_equal(batch.alive, np.ones((5, 60), dtype=bool))

    def test_targeted_crash_hitting_source_keeps_source_alive(self, protocol):
        model = TargetedCrashModel(failed=(0, 1, 2))
        scalar = protocol.run(50, 0.5, seed=6, failure_model=model)
        batch = simulate_protocol_batch(
            protocol, 50, 0.5, repetitions=4, seed=7, failure_model=model
        )
        # The source (member 0) never fails even when targeted; 1 and 2 do.
        assert scalar.alive[0] and not scalar.alive[1] and not scalar.alive[2]
        assert np.all(batch.alive[:, 0])
        assert not np.any(batch.alive[:, 1:3])
        np.testing.assert_array_equal(
            batch.alive, np.tile(scalar.alive, (4, 1))
        )
        assert not np.any(batch.delivered[:, 1:3])

    def test_targeted_crash_everyone_but_source(self, protocol):
        model = TargetedCrashModel(failed=tuple(range(30)))
        scalar = protocol.run(30, 0.9, seed=8, failure_model=model)
        batch = simulate_protocol_batch(
            protocol, 30, 0.9, repetitions=3, seed=9, failure_model=model
        )
        assert scalar.n_alive() == 1 and scalar.reliability() == 1.0
        assert np.all(batch.n_alive() == 1)
        assert np.all(batch.reliability() == 1.0)

    def test_mid_execution_crash_timing_agrees(self, protocol):
        # AFTER_RECEIVE (mid-execution) crashes must not change who counts
        # as delivered: reliability is defined over nonfailed members in
        # both engines regardless of the crash timing.
        before = UniformCrashModel(0.6, after_receive_fraction=0.0)
        after = UniformCrashModel(0.6, after_receive_fraction=1.0)
        for model in (before, after):
            scalar = protocol.run(80, 0.6, seed=10, failure_model=model)
            batch = simulate_protocol_batch(
                protocol, 80, 0.6, repetitions=4, seed=11, failure_model=model
            )
            assert not np.any(scalar.delivered & ~scalar.alive)
            assert not np.any(batch.delivered & ~batch.alive)
        batch_after = simulate_protocol_batch(
            protocol, 80, 0.6, repetitions=4, seed=12, failure_model=after
        )
        # The batch pattern records the timing plane: every failed member of
        # the all-after model crashed mid-execution.
        assert np.all(batch_after.failure.after_receive[~batch_after.failure.alive])
        assert not np.any(batch_after.failure.after_receive[batch_after.failure.alive])

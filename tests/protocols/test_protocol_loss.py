"""Loss-plane tests for the protocol engines.

The vectorised message-loss plane must (1) be invisible at
``loss_probability = 0`` — bit-for-bit identical results to the loss-free
path, (2) kill all dissemination at ``loss_probability = 1``, (3) keep the
``messages_sent`` / ``messages_dropped`` accounting consistent between the
protocol results and the :class:`NetworkModel` counters, (4) compose with
the failure layer (mid-execution crashes included), and (5) agree between
the scalar and batched engines **in distribution** at intermediate loss —
pinned through the shared statistical harness, exactly like the loss-free
engines are.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributions import PoissonFanout
from repro.protocols import (
    FixedFanoutGossip,
    FloodingProtocol,
    LpbcastProtocol,
    PbcastProtocol,
    RandomFanoutGossip,
    RouteDrivenGossip,
)
from repro.simulation.failures import UniformCrashModel
from repro.simulation.gossip import (
    simulate_gossip_batch,
    simulate_gossip_event_driven,
)
from repro.simulation.network import NetworkModel
from repro.simulation.protocol_batch import simulate_protocol_batch
from tests.helpers.statistical import (
    assert_reliability_within_band,
    assert_same_distribution,
)


def all_protocols():
    return [
        FixedFanoutGossip(4),
        RandomFanoutGossip(PoissonFanout(4.0)),
        PbcastProtocol(fanout=2, rounds=5),
        LpbcastProtocol(fanout=3, rounds=6, view_size=20),
        RouteDrivenGossip(fanout=2, rounds=5, pull_fanout=1),
        FloodingProtocol(degree=4),
    ]


@pytest.fixture(params=all_protocols(), ids=lambda p: p.name)
def protocol(request):
    return request.param


class TestZeroLossIsExact:
    """A loss-free network must not perturb the engines at all."""

    def test_batched_identical_to_no_network(self, protocol):
        base = simulate_protocol_batch(protocol, 150, 0.85, repetitions=8, seed=11)
        zero = simulate_protocol_batch(
            protocol, 150, 0.85, repetitions=8, seed=11,
            network=NetworkModel(loss_probability=0.0),
        )
        np.testing.assert_array_equal(base.alive, zero.alive)
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        np.testing.assert_array_equal(base.messages_sent, zero.messages_sent)
        np.testing.assert_array_equal(base.rounds, zero.rounds)
        assert zero.messages_dropped.sum() == 0
        assert np.all(zero.drop_rate() == 0.0)

    def test_scalar_identical_to_no_network(self, protocol):
        base = protocol.run(150, 0.85, seed=13)
        zero = protocol.run(150, 0.85, seed=13, network=NetworkModel(loss_probability=0.0))
        np.testing.assert_array_equal(base.delivered, zero.delivered)
        assert base.messages_sent == zero.messages_sent
        assert base.rounds == zero.rounds
        assert zero.messages_dropped == 0


class TestFullLossKillsDissemination:
    """At loss_probability = 1 no message ever arrives: only the source holds it."""

    def test_batched_only_source_delivered(self, protocol):
        result = simulate_protocol_batch(
            protocol, 120, 0.9, repetitions=6, seed=21,
            network=NetworkModel(loss_probability=1.0),
        )
        assert np.all(result.n_delivered() == 1)
        assert np.all(result.delivered[:, 0])
        np.testing.assert_array_equal(result.messages_dropped, result.messages_sent)

    def test_scalar_only_source_delivered(self, protocol):
        result = protocol.run(120, 0.9, seed=22, network=NetworkModel(loss_probability=1.0))
        assert result.delivered.sum() == 1 and result.delivered[0]
        assert result.messages_dropped == result.messages_sent


class TestAccounting:
    def test_batched_drop_counts_match_network_counters(self, protocol):
        network = NetworkModel(loss_probability=0.25)
        result = simulate_protocol_batch(
            protocol, 200, 0.9, repetitions=10, seed=31, network=network
        )
        assert int(result.messages_dropped.sum()) == network.messages_dropped
        assert int(result.messages_sent.sum()) == network.messages_sent
        assert np.all(result.messages_dropped <= result.messages_sent)

    def test_batched_drop_rate_tracks_loss_probability(self, protocol):
        result = simulate_protocol_batch(
            protocol, 400, 0.9, repetitions=20, seed=32,
            network=NetworkModel(loss_probability=0.3),
        )
        pooled = result.messages_dropped.sum() / result.messages_sent.sum()
        assert pooled == pytest.approx(0.3, abs=0.04)

    def test_scalar_counters_describe_one_run_only(self, protocol):
        # Regression for the counter-leak bug: Protocol.run resets the model,
        # so back-to-back runs on one NetworkModel never accumulate.
        network = NetworkModel(loss_probability=0.2)
        first = protocol.run(150, 0.9, seed=33, network=network)
        assert network.messages_sent == first.messages_sent
        second = protocol.run(150, 0.9, seed=33, network=network)
        assert network.messages_sent == second.messages_sent
        assert network.messages_dropped == second.messages_dropped
        fresh = protocol.run(150, 0.9, seed=33, network=NetworkModel(loss_probability=0.2))
        assert second.messages_sent == fresh.messages_sent
        assert second.messages_dropped == fresh.messages_dropped

    def test_scalar_run_resets_stale_counters(self, protocol):
        network = NetworkModel(loss_probability=0.2)
        network.messages_sent = 10_000
        network.messages_dropped = 5_000
        network.total_latency = 123.0
        result = protocol.run(150, 0.9, seed=34, network=network)
        assert result.messages_dropped <= result.messages_sent < 10_000
        assert network.messages_sent == result.messages_sent


class TestLossComposesWithFailures:
    """Loss and (mid-execution) crashes are independent planes; both apply."""

    @pytest.mark.parametrize("after_receive_fraction", [0.0, 1.0])
    def test_batched_invariants_under_loss_and_crashes(
        self, protocol, after_receive_fraction
    ):
        model = UniformCrashModel(0.7, after_receive_fraction=after_receive_fraction)
        result = simulate_protocol_batch(
            protocol, 200, 0.7, repetitions=8, seed=41,
            failure_model=model, network=NetworkModel(loss_probability=0.3),
        )
        assert not np.any(result.delivered & ~result.alive)
        assert np.all(result.delivered[:, 0])
        assert np.all((result.reliability() >= 0.0) & (result.reliability() <= 1.0))
        assert np.all(result.messages_dropped <= result.messages_sent)

    def test_scalar_invariants_under_loss_and_crashes(self, protocol):
        model = UniformCrashModel(0.7, after_receive_fraction=1.0)
        result = protocol.run(
            200, 0.7, seed=42, failure_model=model,
            network=NetworkModel(loss_probability=0.3),
        )
        assert not np.any(result.delivered & ~result.alive)
        assert 0.0 <= result.reliability() <= 1.0
        assert result.messages_dropped <= result.messages_sent

    def test_loss_degrades_reliability_monotonically(self, protocol):
        # Pooled over replicas, heavy loss can never beat light loss.
        light = simulate_protocol_batch(
            protocol, 300, 0.9, repetitions=30, seed=43,
            network=NetworkModel(loss_probability=0.05),
        )
        heavy = simulate_protocol_batch(
            protocol, 300, 0.9, repetitions=30, seed=44,
            network=NetworkModel(loss_probability=0.6),
        )
        assert heavy.reliability().mean() <= light.reliability().mean() + 0.02


class TestScalarBatchedLossEquivalence:
    """At intermediate loss the two engines must agree in distribution."""

    N = 300
    Q = 0.9
    LOSS = 0.2
    REPS = 60

    def test_delivery_and_reliability_match(self, protocol):
        rng = np.random.default_rng(51)
        network = NetworkModel(loss_probability=self.LOSS)
        scalar = [
            protocol.run(self.N, self.Q, seed=rng, network=network)
            for _ in range(self.REPS)
        ]
        batch = simulate_protocol_batch(
            protocol, self.N, self.Q, repetitions=self.REPS, seed=52,
            network=NetworkModel(loss_probability=self.LOSS),
        )
        label = f"{protocol.name} loss={self.LOSS}"
        assert_same_distribution(
            [r.delivered.sum() for r in scalar],
            batch.n_delivered(),
            label=f"{label} delivered",
        )
        assert_reliability_within_band(
            [r.reliability() for r in scalar],
            batch.reliability(),
            band=0.03,
            label=f"{label} reliability",
        )

    def test_message_and_drop_costs_match(self, protocol):
        rng = np.random.default_rng(53)
        network = NetworkModel(loss_probability=self.LOSS)
        scalar = [
            protocol.run(self.N, self.Q, seed=rng, network=network)
            for _ in range(self.REPS)
        ]
        batch = simulate_protocol_batch(
            protocol, self.N, self.Q, repetitions=self.REPS, seed=54,
            network=NetworkModel(loss_probability=self.LOSS),
        )
        assert_same_distribution(
            [r.messages_sent for r in scalar],
            batch.messages_sent,
            label=f"{protocol.name} messages under loss",
        )
        assert_same_distribution(
            [r.messages_dropped for r in scalar],
            batch.messages_dropped,
            label=f"{protocol.name} drops",
        )


class TestEventDrivenLossEquivalence:
    """The batched lossy gossip engine matches the event-driven reference."""

    def test_poisson_gossip_under_loss(self):
        n, q, loss, reps = 150, 0.9, 0.3, 60
        rng = np.random.default_rng(61)
        network = NetworkModel(loss_probability=loss)
        event = [
            simulate_gossip_event_driven(
                n, PoissonFanout(4.0), q, seed=rng, network=network
            )
            for _ in range(reps)
        ]
        batch = simulate_gossip_batch(
            n, PoissonFanout(4.0), q, repetitions=reps, seed=62,
            network=NetworkModel(loss_probability=loss),
        )
        assert_same_distribution(
            [e.n_delivered() for e in event],
            batch.n_delivered(),
            label="event vs batch delivered under loss",
        )
        assert_reliability_within_band(
            [e.reliability() for e in event],
            batch.reliability(),
            band=0.05,
            label="event vs batch reliability under loss",
        )
